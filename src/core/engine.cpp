#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "simcore/error.hpp"
#include "workload/calibration.hpp"

namespace sci {

namespace cal = calibration;

sim_engine::sim_engine(engine_config config)
    : sim_engine(config, make_regional_scenario(config.scenario)) {}

sim_engine::sim_engine(engine_config config, scenario sc)
    : config_(config),
      scenario_(std::move(sc)),
      behaviors_(config.scenario.seed),
      lifetimes_(config.scenario.seed),
      store_(metric_registry::standard_catalog(), config.store) {
    expects(config_.sampling_interval > 0, "sim_engine: sampling interval > 0");
    expects(config_.drs_interval > 0, "sim_engine: drs interval > 0");
}

void sim_engine::setup() {
    expects(!setup_done_, "sim_engine::setup: already set up");
    setup_done_ = true;

    setup_providers();
    setup_node_churn();
    build_population();
    setup_scrape_pipeline();
    place_initial_population();
    schedule_window_events();
    schedule_resizes();
    setup_faults();
    setup_backpressure();
}

void sim_engine::run() {
    if (!setup_done_) setup();
    run_until(observation_window);
    if (raw_stream_sink_) {
        // the window is over: flush the still-open trailing days
        store_.seal_raw_through(store_.config().days - 1, raw_stream_sink_);
    }
}

void sim_engine::enable_raw_streaming(metric_store::raw_sink sink) {
    raw_stream_sink_ = std::move(sink);
}

void sim_engine::run_until(sim_time until) {
    expects(setup_done_, "sim_engine::run_until: call setup() first");
    queue_.run_until(until, [this](const engine_event& event, sim_time t) {
        dispatch(event, t);
    });
}

void sim_engine::dispatch(const engine_event& event, sim_time t) {
    using action = engine_event::action;
    switch (event.act) {
        case action::commission_node: {
            const node_id node(event.id);
            cluster_of(scenario_.infrastructure.get(node).bb)
                .node(node)
                .set_accepting(true);
            if (bp_ != nullptr) bp_drain_wanted_ = true;
            break;
        }
        case action::decommission_node:
            decommission_node(node_id(event.id), t);
            break;
        case action::delete_vm:
            delete_vm(vm_id(event.id), t);
            break;
        case action::drain_arrivals:
            drain_arrivals(t);
            break;
        case action::scrape:
            scrape(t);
            break;
        case action::drs_pass:
            drs_pass(t);
            break;
        case action::cross_bb_pass:
            cross_bb_pass(t);
            break;
        case action::resize_vm:
            resize_vm(vm_id(event.id), t);
            break;
        case action::fault:
            apply_fault(event.fault, t);
            break;
        case action::drain_ha_restarts:
            drain_ha_restarts(t);
            break;
        case action::drain_backpressure:
            drain_backpressure(t);
            break;
    }
    // Any capacity released during this event (deletion, crash repair,
    // migration, commission) re-arms the pinned drain for the same
    // instant — it fires before later-scheduled work at t, mirroring the
    // churn drain's tie order.
    if (bp_ != nullptr) maybe_arm_bp_drain(t);
}

void sim_engine::set_drs_enabled(bool enabled) {
    config_.drs.enabled = enabled;
    for (drs_cluster& cluster : clusters_) cluster.set_enabled(enabled);
}

void sim_engine::set_gp_cpu_allocation_ratio(double ratio) {
    expects(ratio > 0.0,
            "sim_engine::set_gp_cpu_allocation_ratio: ratio must be positive");
    config_.gp_cpu_allocation_ratio_override = ratio;
    for (const building_block& bb : scenario_.infrastructure.bbs()) {
        if (bb.purpose != bb_purpose::general) continue;
        provider_inventory inv = placement_.inventory(bb.id);
        inv.cpu_allocation_ratio = ratio;
        placement_.update_inventory(bb.id, inv);
        cluster_of(bb.id).set_allocation_ratios(ratio,
                                                inv.ram_allocation_ratio);
    }
    conductor_->invalidate_host_view();
}

// ---------------------------------------------------------------------------
// setup
// ---------------------------------------------------------------------------

void sim_engine::setup_providers() {
    const fleet& f = scenario_.infrastructure;

    // one placement provider + one DRS cluster per building block
    clusters_.reserve(f.bb_count());
    for (const building_block& bb : f.bbs()) {
        allocation_ratios ratios = default_ratios_for(bb.purpose);
        if (bb.purpose == bb_purpose::general &&
            config_.gp_cpu_allocation_ratio_override.has_value()) {
            ratios.cpu = *config_.gp_cpu_allocation_ratio_override;
        }
        provider_inventory inv;
        inv.total_pcpus = f.bb_total_cores(bb.id);
        inv.total_ram_mib = f.bb_total_memory(bb.id);
        inv.total_disk_gib =
            bb.profile.storage_gib * static_cast<double>(bb.nodes.size());
        inv.cpu_allocation_ratio = ratios.cpu;
        inv.ram_allocation_ratio = ratios.ram;
        placement_.register_provider(bb.id, inv);

        drs_config cluster_cfg = config_.drs;
        cluster_cfg.cpu_allocation_ratio = ratios.cpu;
        cluster_cfg.ram_allocation_ratio = ratios.ram;
        // memory-bound clusters bin-pack within the cluster (Section 3.2)
        cluster_cfg.pack_memory = bb.purpose == bb_purpose::hana ||
                                  bb.purpose == bb_purpose::dedicated_xl;
        clusters_.emplace_back(bb, cluster_cfg);
    }
    bb_contention_ewma_.assign(f.bb_count(), 0.0);
    demand_scratch_.assign(f.node_count(), node_demand{});

    // scheduler pipeline, optionally contention-aware (Section 7 guidance)
    auto filters = make_default_filters();
    auto spread = make_spread_weighers();
    auto pack = make_pack_weighers();
    if (config_.contention_aware) {
        filters.push_back(std::make_unique<contention_filter>(
            config_.contention_filter_threshold_pct));
        spread.push_back({std::make_unique<contention_weigher>(), 1.0});
        pack.push_back({std::make_unique<contention_weigher>(), 1.0});
    }
    conductor_ = std::make_unique<conductor>(
        f, scenario_.catalog, placement_,
        filter_scheduler(std::move(filters), std::move(spread), std::move(pack)));
    if (config_.contention_aware) {
        conductor_->set_contention_feed(
            [this](bb_id bb) { return bb_contention(bb); });
    }

    // open every node / BB series up front (labels are stable)
    node_series_.resize(f.node_count());
    for (const compute_node& node : f.nodes()) {
        const building_block& bb = f.get(node.bb);
        const datacenter& dc = f.get(bb.dc);
        const label_set labels{{"node", node.name}, {"bb", bb.name}, {"dc", dc.name}};
        node_series& s = node_series_[static_cast<std::size_t>(node.id.value())];
        using namespace metric_names;
        s.cpu_util = store_.open_series(host_cpu_core_utilization, labels);
        s.contention = store_.open_series(host_cpu_contention, labels);
        s.ready = store_.open_series(host_cpu_ready, labels);
        s.mem = store_.open_series(host_memory_usage, labels);
        s.tx = store_.open_series(host_network_tx, labels);
        s.rx = store_.open_series(host_network_rx, labels);
        s.disk = store_.open_series(host_diskspace_usage, labels);
    }
    bb_series_.resize(f.bb_count());
    for (const building_block& bb : f.bbs()) {
        const datacenter& dc = f.get(bb.dc);
        const label_set labels{{"bb", bb.name}, {"dc", dc.name}};
        bb_series& s = bb_series_[static_cast<std::size_t>(bb.id.value())];
        using namespace metric_names;
        s.vcpus = store_.open_series(os_nodes_vcpus, labels);
        s.vcpus_used = store_.open_series(os_nodes_vcpus_used, labels);
        s.mem = store_.open_series(os_nodes_memory_mb, labels);
        s.mem_used = store_.open_series(os_nodes_memory_mb_used, labels);
    }
    instances_series_ = store_.open_series(
        metric_names::os_instances_total,
        label_set{{"region", f.get(scenario_.region).name}});
}

std::vector<sim_engine::node_churn_action> sim_engine::plan_node_churn() const {
    const fleet& f = scenario_.infrastructure;
    rng_stream rng(config_.scenario.seed, "node-churn");
    // deterministic count (round(fraction * nodes)): the white heatmap
    // cells must appear at any fleet size, not just in expectation
    const auto churn_count = static_cast<std::size_t>(
        std::lround(config_.node_churn_fraction *
                    static_cast<double>(f.node_count())));
    std::vector<node_id> churned;
    std::vector<std::size_t> indices(f.node_count());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    for (std::size_t pick = 0; pick < churn_count && !indices.empty(); ++pick) {
        const auto slot = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(indices.size()) - 1));
        churned.push_back(
            node_id(static_cast<std::int32_t>(indices[slot])));
        indices.erase(indices.begin() + static_cast<std::ptrdiff_t>(slot));
    }
    std::vector<node_churn_action> plan;
    plan.reserve(churned.size());
    for (const node_id churned_id : churned) {
        if (rng.chance(0.5)) {
            // commissioned mid-window: unavailable before available_from
            const auto from = static_cast<sim_time>(
                rng.uniform(0.1, 0.8) * static_cast<double>(observation_window));
            plan.push_back({churned_id, true, from});
        } else {
            // decommissioned mid-window: evacuated at available_until
            const auto until = static_cast<sim_time>(
                rng.uniform(0.2, 0.95) * static_cast<double>(observation_window));
            plan.push_back({churned_id, false, until});
        }
    }
    return plan;
}

void sim_engine::setup_node_churn() {
    fleet& f = scenario_.infrastructure;
    for (const node_churn_action& a : plan_node_churn()) {
        compute_node& mutable_node = f.get_mutable(a.node);
        if (a.commission) {
            mutable_node.available_from = a.at;
            cluster_of(mutable_node.bb).node(a.node).set_accepting(false);
            queue_.schedule_at(
                a.at, engine_event{engine_event::action::commission_node,
                                   a.node.value()});
        } else {
            mutable_node.available_until = a.at;
            queue_.schedule_at(
                a.at, engine_event{engine_event::action::decommission_node,
                                   a.node.value()});
        }
    }
}

void sim_engine::build_population() {
    population_config pop_cfg = config_.population;
    pop_cfg.initial_population = scenario_.target_vm_population;
    pop_cfg.seed = config_.scenario.seed;
    population_plan_ = sci::build_population(pop_cfg, scenario_.catalog,
                                             scenario_.mix, lifetimes_, vms_);
}

unsigned sim_engine::worker_threads() const {
    return config_.threads.value_or(thread_pool::env_threads());
}

void sim_engine::run_sharded(std::size_t count, const thread_pool::range_fn& fn) {
    if (shared_pool_ != nullptr) {
        shared_pool_->parallel_for(0, count, fn);
    } else if (pool_ != nullptr) {
        pool_->parallel_for(0, count, fn);
    } else if (count > 0) {
        fn(0, 0, count);
    }
}

void sim_engine::set_shared_pool(thread_pool* pool) {
    expects(!setup_done_, "sim_engine::set_shared_pool: call before setup()");
    shared_pool_ = pool;
}

void sim_engine::setup_scrape_pipeline() {
    const fleet& f = scenario_.infrastructure;
    const unsigned workers = worker_threads();
    if (shared_pool_ == nullptr && workers > 0) {
        pool_ = std::make_unique<thread_pool>(workers);
    }

    // The slot map is the only per-VM-ever array (4 B each); the slot
    // columns grow to the peak concurrently-active population and recycle
    // through the free-list.  Behaviors are sampled eagerly when a slot is
    // filled — sample() is pure in (vm, flavor, project), so eager and
    // lazy sampling produce identical bytes.
    const std::size_t population = vms_.size();
    vm_slot_.assign(population, no_slot);
    const std::size_t expected_active = population_plan_.initial.size();
    slot_vm_.reserve(expected_active);
    slot_node_.reserve(expected_active);
    slot_flavor_.reserve(expected_active);
    slot_created_.reserve(expected_active);
    slot_cpu_series_.reserve(expected_active);
    slot_mem_series_.reserve(expected_active);
    slot_behavior_.reserve(expected_active);
    active_slots_.reserve(expected_active);

    shard_demand_.assign(scrape_shard_count,
                         std::vector<node_demand>(f.node_count()));
    // fault-layer per-node state; inert defaults (no host down, full
    // capacity) so the zero-fault path computes exactly what it always did
    node_down_.assign(f.node_count(), 0);
    node_az_down_.assign(f.node_count(), 0);
    node_cpu_factor_.assign(f.node_count(), 1.0);
    scrape_nodes_.clear();
    scrape_nodes_.reserve(f.node_count());
    for (std::size_t c = 0; c < clusters_.size(); ++c) {
        for (const node_runtime& nr : clusters_[c].nodes()) {
            scrape_nodes_.push_back(
                scrape_node{&nr, &f.get(nr.id()),
                            static_cast<std::uint32_t>(nr.id().value()),
                            static_cast<std::uint32_t>(c)});
        }
    }
    node_snap_buf_.resize(scrape_nodes_.size());
    node_avail_buf_.resize(scrape_nodes_.size());
}

void sim_engine::place_initial_population() {
    const auto wall_begin = std::chrono::steady_clock::now();
    // place in creation order: the fleet's history replayed
    std::vector<const vm_plan*> order;
    order.reserve(population_plan_.initial.size());
    for (const vm_plan& p : population_plan_.initial) order.push_back(&p);
    std::stable_sort(order.begin(), order.end(),
                     [](const vm_plan* a, const vm_plan* b) {
                         return a->created_at < b->created_at;
                     });

    const auto schedule_deletion = [this](const vm_plan* plan) {
        if (!plan->deleted_at.has_value()) return;
        queue_.schedule_at(*plan->deleted_at,
                           engine_event{engine_event::action::delete_vm,
                                        plan->vm.value()});
    };

    if (config_.holistic) {
        // the holistic ablation places straight onto nodes — no conductor,
        // nothing to speculate against
        for (const vm_plan* plan : order) {
            if (place_vm(plan->vm, plan->created_at)) schedule_deletion(plan);
        }
        stats_.initial_placement_wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - wall_begin)
                .count();
        return;
    }

    // Speculative batched placement.  The pipeline runs at EVERY thread
    // count (pool workers when configured, inline otherwise): the commit
    // is exact, so placements match the old serial loop byte for byte,
    // and running it unconditionally keeps the speculation counters —
    // which appear in the report — identical at any SCI_THREADS.
    //
    // Speculation raws may be reused at commit only while every host
    // field they read is unchanged; that includes the contention feed,
    // which is safe here because no scrape has run yet (the first fires
    // at t = 0, after setup), so the EWMA is zero on both sides.
    const std::size_t n = order.size();
    const std::size_t batch = std::min(n, placement_batch_size);
    spec_slots_.resize(batch);
    spec_requests_.resize(batch);
    const filter_scheduler& scheduler = conductor_->scheduler();
    for (std::size_t begin = 0; begin < n; begin += placement_batch_size) {
        const std::size_t count = std::min(placement_batch_size, n - begin);
        // serial prep: requests (policy sampling stays on the main thread)
        for (std::size_t i = 0; i < count; ++i) {
            const vm_record& rec = vms_.get(order[begin + i]->vm);
            schedule_request& rq = spec_requests_[i];
            rq = schedule_request{};
            rq.vm = rec.id;
            rq.flavor = rec.flavor;
            rq.project = rec.project;
            rq.policy = policy_for(rec.id, scenario_.catalog.get(rec.flavor));
        }
        // immutable snapshot of the live host view for this batch
        spec_snapshot_ = conductor_->host_states();  // copy reuses capacity
        conductor_->snapshot_claim_counts(spec_claim_counts_);
        run_sharded(count, [&](unsigned, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const schedule_request& rq = spec_requests_[i];
                const request_context ctx{rq, scenario_.catalog.get(rq.flavor)};
                scheduler.speculate(ctx, spec_snapshot_, spec_slots_[i]);
            }
        });
        // serial commit pass, in creation order
        for (std::size_t i = 0; i < count; ++i) {
            const vm_plan* plan = order[begin + i];
            if (place_vm(plan->vm, plan->created_at,
                         lifecycle_event_kind::create, &spec_slots_[i],
                         spec_claim_counts_)) {
                schedule_deletion(plan);
            }
        }
    }
    stats_.speculative_placements = conductor_->speculative_placement_count();
    stats_.speculation_misses = conductor_->speculation_miss_count();
    stats_.initial_placement_wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_begin)
            .count();
}

void sim_engine::schedule_window_events() {
    // Churn arrivals: a pre-sorted cursor drained by one self-rescheduling
    // event instead of one heap entry per arrival.  The drain sits in a
    // pinned sequence slot reserved HERE — where the per-arrival closures
    // used to be scheduled — so at a tied timestamp it still fires after
    // everything scheduled earlier in setup (node churn, initial-VM
    // deletions) and before everything scheduled later (the events below,
    // resizes, faults, and anything scheduled at runtime), exactly like
    // the per-arrival events it replaces.
    arrivals_.reserve(population_plan_.arrivals.size());
    for (const vm_plan& plan : population_plan_.arrivals) {
        arrivals_.push_back({plan.vm, plan.created_at, plan.deleted_at});
    }
    std::stable_sort(arrivals_.begin(), arrivals_.end(),
                     [](const churn_arrival& a, const churn_arrival& b) {
                         return a.created_at < b.created_at;
                     });
    arrival_drain_seq_ = queue_.reserve_seq();
    // The backpressure drain slot is reserved unconditionally right after
    // the churn drain's: with backpressure off nothing is ever scheduled
    // into it, and reserving it only shifts every later sequence number by
    // one uniformly — relative tie order (and so the default output) is
    // unchanged.
    bp_drain_seq_ = queue_.reserve_seq();
    if (!arrivals_.empty()) {
        queue_.schedule_at_pinned(
            arrivals_.front().created_at, arrival_drain_seq_,
            engine_event{engine_event::action::drain_arrivals});
    }
    // scrapes (self-rescheduling)
    queue_.schedule_at(0, engine_event{engine_event::action::scrape});
    // DRS passes, offset so they interleave between scrapes
    queue_.schedule_at(config_.drs_interval,
                       engine_event{engine_event::action::drs_pass});
    // cross-BB rebalancer (optional; the paper's "external rebalancers")
    if (config_.cross_bb_interval > 0) {
        queue_.schedule_at(config_.cross_bb_interval,
                          engine_event{engine_event::action::cross_bb_pass});
    }
}

void sim_engine::drain_arrivals(sim_time t) {
    const auto wall_begin = std::chrono::steady_clock::now();
    const bool speculative = !config_.holistic;
    while (arrival_cursor_ < arrivals_.size() &&
           arrivals_[arrival_cursor_].created_at == t) {
        if (speculative) {
            // Re-checked per arrival: a shrink can happen mid-drain (the
            // forced-fit failure path releases the claim it just made).
            if (window_spec_active_ &&
                (placement_.shrink_version() != spec_shrink_version_ ||
                 (config_.contention_aware && stats_.scrapes != spec_scrapes_))) {
                // usage no longer monotone since the snapshot (or the
                // contention feed moved): the uncommitted tail cannot be
                // committed exactly — drop it and re-speculate below
                stats_.window_speculation_invalidated +=
                    static_cast<std::uint64_t>(spec_end_ - arrival_cursor_);
                window_spec_active_ = false;
            }
            if (!window_spec_active_ || arrival_cursor_ >= spec_end_) {
                speculate_arrival_batch(t);
            }
        }
        const host_speculation* spec =
            window_spec_active_ ? &spec_slots_[arrival_cursor_ - spec_begin_]
                                : nullptr;
        const vm_id vm = arrivals_[arrival_cursor_].vm;
        const std::optional<sim_time> deleted_at =
            arrivals_[arrival_cursor_].deleted_at;
        ++arrival_cursor_;
        const std::uint64_t spec_ok = conductor_->speculative_placement_count();
        const std::uint64_t spec_miss = conductor_->speculation_miss_count();
        // Under backpressure a failed arrival is not a terminal
        // schedule_fail: it is admitted to the bounded deadline queue (or
        // shed with a reason when that is full).  The planned deletion is
        // only scheduled once the VM actually places.
        const bool quiet = bp_ != nullptr;
        if (place_vm(vm, t, lifecycle_event_kind::create, spec,
                     spec_claim_counts_, quiet)) {
            if (deleted_at.has_value()) {
                queue_.schedule_at(
                    *deleted_at,
                    engine_event{engine_event::action::delete_vm, vm.value()});
            }
        } else if (quiet) {
            bp_admit(vm, t, bp_request_kind::create,
                     deleted_at.value_or(bp_queued_request::no_deletion));
        }
        stats_.window_speculative_placements +=
            conductor_->speculative_placement_count() - spec_ok;
        stats_.window_speculation_misses +=
            conductor_->speculation_miss_count() - spec_miss;
    }
    if (window_spec_active_ && arrival_cursor_ >= spec_end_) {
        window_spec_active_ = false;  // batch fully committed
    }
    if (arrival_cursor_ < arrivals_.size()) {
        // re-arm in the same pinned slot: the tie order above holds at
        // every future timestamp too
        queue_.schedule_at_pinned(
            arrivals_[arrival_cursor_].created_at, arrival_drain_seq_,
            engine_event{engine_event::action::drain_arrivals});
    }
    stats_.churn_placement_wall_ms +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_begin)
            .count();
}

void sim_engine::speculate_arrival_batch(sim_time t) {
    // batch = the pending arrivals of the current scrape interval (the
    // longest stretch over which the contention feed is guaranteed
    // stationary), capped at placement_batch_size
    const sim_time horizon =
        (t / config_.sampling_interval + 1) * config_.sampling_interval;
    std::size_t end = arrival_cursor_;
    while (end < arrivals_.size() && arrivals_[end].created_at < horizon &&
           end - arrival_cursor_ < placement_batch_size) {
        ++end;
    }
    const std::size_t count = end - arrival_cursor_;
    // the caller only speculates when an arrival is due at t, so the
    // batch is never empty (arrivals_[cursor].created_at == t < horizon)
    if (spec_slots_.size() < count) {
        spec_slots_.resize(count);
        spec_requests_.resize(count);
    }
    const filter_scheduler& scheduler = conductor_->scheduler();
    // serial prep: requests (policy sampling stays on the main thread)
    for (std::size_t i = 0; i < count; ++i) {
        const vm_record& rec = vms_.get(arrivals_[arrival_cursor_ + i].vm);
        schedule_request& rq = spec_requests_[i];
        rq = schedule_request{};
        rq.vm = rec.id;
        rq.flavor = rec.flavor;
        rq.project = rec.project;
        rq.policy = policy_for(rec.id, scenario_.catalog.get(rec.flavor));
    }
    // immutable snapshot of the live host view for this batch
    spec_snapshot_ = conductor_->host_states();  // copy reuses capacity
    conductor_->snapshot_claim_counts(spec_claim_counts_);
    run_sharded(count, [&](unsigned, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            const schedule_request& rq = spec_requests_[i];
            const request_context ctx{rq, scenario_.catalog.get(rq.flavor)};
            scheduler.speculate(ctx, spec_snapshot_, spec_slots_[i]);
        }
    });
    spec_begin_ = arrival_cursor_;
    spec_end_ = end;
    spec_shrink_version_ = placement_.shrink_version();
    spec_scrapes_ = stats_.scrapes;
    window_spec_active_ = true;
    ++stats_.window_batches;
    stats_.window_speculations += static_cast<std::uint64_t>(count);
    churn_batch_spans_.push_back({arrivals_[spec_begin_].created_at,
                                  arrivals_[end - 1].created_at,
                                  static_cast<std::uint32_t>(count)});
}

// ---------------------------------------------------------------------------
// placement & lifecycle
// ---------------------------------------------------------------------------

placement_policy sim_engine::policy_for(vm_id vm, const flavor& f) const {
    if (config_.lifetime_aware) {
        // pack short-lived VMs together to contain churn-driven
        // fragmentation (Section 7 "workload lifetime" guidance)
        if (lifetimes_.sample(vm, f) < days(7)) return placement_policy::pack;
    }
    return f.wclass == workload_class::general_purpose ? placement_policy::spread
                                                       : placement_policy::pack;
}

bool sim_engine::place_vm(vm_id vm, sim_time when, lifecycle_event_kind kind,
                          const host_speculation* spec,
                          std::span<const std::uint64_t> spec_counts,
                          bool quiet_fail) {
    if (config_.holistic) return place_vm_holistic(vm, when, kind, quiet_fail);

    vm_record& rec = vms_.get_mutable(vm);
    const flavor& f = scenario_.catalog.get(rec.flavor);
    schedule_request request;
    request.vm = vm;
    request.flavor = rec.flavor;
    request.project = rec.project;
    request.policy = policy_for(vm, f);

    // On a speculation miss the conductor resets the outcome before the
    // serial re-placement, so its attempts are counted exactly once here.
    const placement_outcome outcome =
        conductor_->schedule_and_claim(request, spec, spec_counts);
    stats_.scheduler_retries +=
        outcome.attempts > 0 ? static_cast<std::uint64_t>(outcome.attempts - 1) : 0;
    if (!outcome.success) {
        if (quiet_fail) return false;
        rec.state = vm_state::error;
        ++stats_.placement_failures;
        events_.record(
            lifecycle_event{.t = when,
                            .kind = lifecycle_event_kind::schedule_fail,
                            .vm = vm,
                            .reason = schedule_fail_reason::no_valid_host});
        return false;
    }

    drs_cluster& cluster = cluster_of(outcome.bb);
    std::optional<node_id> node = cluster.initial_placement(f);
    if (!node.has_value()) {
        // BB-level aggregate space exists but no single node fits: the
        // fragmentation blind spot of the two-layer design.  The cluster
        // force-admits onto the least-reserved accepting node.
        const node_runtime* best = nullptr;
        double best_ratio = std::numeric_limits<double>::infinity();
        for (const node_runtime& nr : cluster.nodes()) {
            if (!nr.accepting()) continue;
            if (nr.ram_reserved_ratio() < best_ratio) {
                best_ratio = nr.ram_reserved_ratio();
                best = &nr;
            }
        }
        if (best == nullptr) {
            placement_.release(vm, f);
            if (quiet_fail) return false;
            rec.state = vm_state::error;
            ++stats_.placement_failures;
            events_.record(lifecycle_event{
                .t = when,
                .kind = lifecycle_event_kind::schedule_fail,
                .vm = vm,
                .reason = schedule_fail_reason::no_accepting_node});
            return false;
        }
        node = best->id();
        ++stats_.forced_fits;
    }
    cluster.place(vm, f, *node);
    rec.placed_bb = outcome.bb;
    rec.placed_node = *node;
    rec.state = vm_state::active;
    rec.created_at = std::min(rec.created_at, when);
    ++stats_.placements;
    active_insert(vm);

    open_vm_series(rec);
    events_.record(lifecycle_event{.t = when,
                                   .kind = kind,
                                   .vm = vm,
                                   .bb = rec.placed_bb,
                                   .to = rec.placed_node});
    return true;
}

void sim_engine::open_vm_series(const vm_record& rec) {
    const std::uint32_t slot = slot_of(rec.id);
    expects(slot != no_slot, "open_vm_series: vm has no active slot");
    if (slot_cpu_series_[slot].valid()) return;
    // open_series is get-or-create on (metric, labels) and the labels are
    // stable per VM, so a slot recycled across a crash/HA-restart cycle
    // resolves to the very same series the VM appended to before.
    const label_set labels{{"vm", rec.name}};
    slot_cpu_series_[slot] =
        store_.open_series(metric_names::vm_cpu_usage_ratio, labels);
    slot_mem_series_[slot] =
        store_.open_series(metric_names::vm_memory_consumed_ratio, labels);
}

migration_estimate sim_engine::estimate_vm_migration(vm_id vm, sim_time t) {
    const vm_record& rec = vms_.get(vm);
    const flavor& f = scenario_.catalog.get(rec.flavor);
    const auto resident = static_cast<mebibytes>(
        behavior_of(vm).mem_ratio_at(t, t - rec.created_at) *
        static_cast<double>(f.ram_mib));
    const double dirty = estimate_dirty_rate(
        vm_cpu_demand_cores(vm, t), f.wclass == workload_class::hana_db);
    return estimate_live_migration(resident, dirty, config_.migration_cost);
}

void sim_engine::account_migration(vm_id vm, sim_time t) {
    const migration_estimate est = estimate_vm_migration(vm, t);
    stats_.migration_seconds += est.total_seconds;
    stats_.max_migration_downtime_ms =
        std::max(stats_.max_migration_downtime_ms, est.downtime_ms);
}

bool sim_engine::place_vm_holistic(vm_id vm, sim_time when,
                                   lifecycle_event_kind kind,
                                   bool quiet_fail) {
    vm_record& rec = vms_.get_mutable(vm);
    const flavor& f = scenario_.catalog.get(rec.flavor);
    const placement_policy policy = policy_for(vm, f);

    // single-layer scheduler: scan *nodes* across all purpose-compatible
    // clusters and pick the best admissible one directly
    drs_cluster* best_cluster = nullptr;
    const node_runtime* best_node = nullptr;
    double best_score = std::numeric_limits<double>::infinity();
    for (drs_cluster& cluster : clusters_) {
        const building_block& bb =
            scenario_.infrastructure.get(cluster.bb());
        const bool purpose_ok =
            f.requires_dedicated_bb()
                ? bb.purpose == bb_purpose::dedicated_xl
                : (f.wclass == workload_class::hana_db
                       ? bb.purpose == bb_purpose::hana
                       : bb.purpose == bb_purpose::general);
        if (!purpose_ok) continue;
        for (const node_runtime& nr : cluster.nodes()) {
            if (!nr.accepting()) continue;
            if (!nr.fits(f, cluster.config().cpu_allocation_ratio,
                         cluster.config().ram_allocation_ratio)) {
                continue;
            }
            const double util = 0.5 * nr.cpu_overcommit() /
                                    cluster.config().cpu_allocation_ratio +
                                0.5 * nr.ram_reserved_ratio();
            const double score =
                policy == placement_policy::spread ? util : -util;
            if (score < best_score) {
                best_score = score;
                best_cluster = &cluster;
                best_node = &nr;
            }
        }
    }
    if (best_cluster == nullptr) {
        if (quiet_fail) return false;
        rec.state = vm_state::error;
        ++stats_.placement_failures;
        events_.record(lifecycle_event{
            .t = when,
            .kind = lifecycle_event_kind::schedule_fail,
            .vm = vm,
            .reason = schedule_fail_reason::holistic_no_candidate});
        return false;
    }
    // The node accepted the VM, but the provider-level claim re-checks
    // against the BB inventory — which a mass-crash can shrink below the
    // sum of what individual nodes still advertise.  That race is a
    // NoValidHost, not a crash: degrade exactly like the no-candidate
    // path (the claim threw before touching any state).
    try {
        placement_.claim(vm, best_cluster->bb(), f);
    } catch (const capacity_error&) {
        if (quiet_fail) return false;
        rec.state = vm_state::error;
        ++stats_.placement_failures;
        ++stats_.holistic_claim_rejections;
        events_.record(lifecycle_event{
            .t = when,
            .kind = lifecycle_event_kind::schedule_fail,
            .vm = vm,
            .reason = schedule_fail_reason::holistic_claim_rejected});
        return false;
    }
    best_cluster->place(vm, f, best_node->id());
    rec.placed_bb = best_cluster->bb();
    rec.placed_node = best_node->id();
    rec.state = vm_state::active;
    rec.created_at = std::min(rec.created_at, when);
    ++stats_.placements;
    active_insert(vm);

    open_vm_series(rec);
    events_.record(lifecycle_event{.t = when,
                                   .kind = kind,
                                   .vm = vm,
                                   .bb = rec.placed_bb,
                                   .to = rec.placed_node});
    return true;
}

void sim_engine::delete_vm(vm_id vm, sim_time when) {
    vm_record& rec = vms_.get_mutable(vm);
    if (ha_ != nullptr && ha_->cancel(vm)) {
        // the owner deleted a crash victim while it was still down; its
        // resources were already released at crash time, so just retire it
        rec.state = vm_state::deleted;
        rec.deleted_at = when;
        ++stats_.deletions;
        events_.record(lifecycle_event{.t = when,
                                       .kind = lifecycle_event_kind::remove,
                                       .vm = vm,
                                       .bb = rec.placed_bb});
        return;
    }
    if (bp_ != nullptr && bp_->cancel(vm)) {
        // the owner deleted a request still waiting in the backpressure
        // queue; it never held resources, so just retire it
        rec.state = vm_state::deleted;
        rec.deleted_at = when;
        ++stats_.deletions;
        ++stats_.bp_cancelled;
        events_.record(lifecycle_event{.t = when,
                                       .kind = lifecycle_event_kind::remove,
                                       .vm = vm});
        return;
    }
    if (rec.state != vm_state::active) return;
    const flavor& f = scenario_.catalog.get(rec.flavor);
    cluster_of(rec.placed_bb).remove(vm, f, rec.placed_node);
    placement_.release(vm, f);
    rec.state = vm_state::deleted;
    rec.deleted_at = when;
    ++stats_.deletions;
    active_erase(vm);
    events_.record(lifecycle_event{.t = when,
                                   .kind = lifecycle_event_kind::remove,
                                   .vm = vm,
                                   .bb = rec.placed_bb,
                                   .from = rec.placed_node});
}

void sim_engine::decommission_node(node_id node, sim_time t) {
    cluster_of(scenario_.infrastructure.get(node).bb)
        .node(node)
        .set_accepting(false);
    evacuate_node(node, t, lifecycle_event_kind::evacuate);
}

std::size_t sim_engine::evacuate_node(node_id node, sim_time t,
                                      lifecycle_event_kind kind) {
    const compute_node& meta = scenario_.infrastructure.get(node);
    drs_cluster& cluster = cluster_of(meta.bb);
    node_runtime& nr = cluster.node(node);

    // re-place every resident within the cluster, in ascending-id order
    // (the resident container is id-sorted; copy because re-placement
    // mutates the source node's resident list)
    const std::vector<vm_id> residents(nr.residents().begin(),
                                       nr.residents().end());
    for (vm_id vm : residents) {
        vm_record& rec = vms_.get_mutable(vm);
        const flavor& f = scenario_.catalog.get(rec.flavor);
        cluster.remove(vm, f, node);
        std::optional<node_id> target = cluster.initial_placement(f);
        if (!target.has_value()) {
            // force-admit on the least-reserved accepting node
            const node_runtime* best = nullptr;
            double best_ratio = std::numeric_limits<double>::infinity();
            for (const node_runtime& other : cluster.nodes()) {
                if (!other.accepting()) continue;
                if (other.ram_reserved_ratio() < best_ratio) {
                    best_ratio = other.ram_reserved_ratio();
                    best = &other;
                }
            }
            if (best == nullptr) {
                // cluster fully out of service: the VM is terminated —
                // recorded like any other deletion, so the log accounts
                // for every VM that left the fleet (no silent drops)
                placement_.release(vm, f);
                rec.state = vm_state::deleted;
                rec.deleted_at = t;
                ++stats_.deletions;
                active_erase(vm);
                events_.record(
                    lifecycle_event{.t = t,
                                    .kind = lifecycle_event_kind::remove,
                                    .vm = vm,
                                    .bb = meta.bb,
                                    .from = node});
                continue;
            }
            target = best->id();
            ++stats_.forced_fits;
        }
        cluster.place(vm, f, *target);
        rec.placed_node = *target;
        slot_move(vm, *target);
        ++rec.migration_count;
        ++stats_.evacuations;
        account_migration(vm, t);
        events_.record(lifecycle_event{.t = t,
                                       .kind = kind,
                                       .vm = vm,
                                       .bb = meta.bb,
                                       .from = node,
                                       .to = *target});
    }
    return residents.size();
}

// ---------------------------------------------------------------------------
// telemetry & balancing
// ---------------------------------------------------------------------------

const vm_behavior& sim_engine::behavior_of(vm_id vm) {
    const std::uint32_t slot = slot_of(vm);
    if (slot != no_slot) return slot_behavior_[slot];
    // No slot: the VM is deleted or pending.  Only serial callers (tests,
    // diagnostics) reach this path — every parallel stage reads slot
    // columns of *resident* VMs — so one scratch value suffices.
    const vm_record& rec = vms_.get(vm);
    fallback_behavior_ =
        behaviors_.sample(vm, scenario_.catalog.get(rec.flavor), rec.project);
    return fallback_behavior_;
}

double sim_engine::vm_cpu_demand_cores(vm_id vm, sim_time t) {
    const vm_record& rec = vms_.get(vm);
    const flavor& f = scenario_.catalog.get(rec.flavor);
    return behavior_of(vm).cpu_ratio_at(t) * static_cast<double>(f.vcpus);
}

void sim_engine::scrape(sim_time t) {
    const fleet& f = scenario_.infrastructure;

    // The per-scrape stage-0 rebuild is gone: the SoA slot columns are
    // maintained incrementally at every lifecycle touch point, and
    // active_slots_ already walks them in ascending vm-id order — the
    // element-for-element order the old snapshot produced.
    const std::size_t n_active = active_slots_.size();
    scrape_cpu_col_.resize(n_active);
    scrape_mem_col_.resize(n_active);

    // --- stage 1 (parallel): per-VM demand into fixed shards ------------
    // The active list is split by scrape_shard_count — never by worker
    // count — so each shard's accumulation order is the same whether the
    // shards run on 0, 1 or N workers.  Workers stream the contiguous
    // slot columns instead of chasing vm_record pointers; sample values
    // land in per-VM column slots, nothing shared is written.
    run_sharded(scrape_shard_count,
                [&](unsigned, std::size_t s_begin, std::size_t s_end) {
        for (std::size_t s = s_begin; s < s_end; ++s) {
            std::vector<node_demand>& scratch = shard_demand_[s];
            std::fill(scratch.begin(), scratch.end(), node_demand{});
            const auto [vm_lo, vm_hi] = thread_pool::shard(
                0, n_active, static_cast<unsigned>(s), scrape_shard_count);
            for (std::size_t i = vm_lo; i < vm_hi; ++i) {
                const std::uint32_t slot = active_slots_[i];
                const flavor& fl = *slot_flavor_[slot];
                const vm_behavior& b = slot_behavior_[slot];
                const double cpu_ratio = b.cpu_ratio_at(t);
                const double mem_ratio =
                    b.mem_ratio_at(t, t - slot_created_[slot]);
                // pinned-QoS VMs hold dedicated cores; others share the pool
                const double shared_cores =
                    fl.cpu_pinned ? 0.0
                                  : cpu_ratio * static_cast<double>(fl.vcpus);
                node_demand& d = scratch[slot_node_[slot]];
                d.add(shared_cores,
                      static_cast<mebibytes>(mem_ratio *
                                             static_cast<double>(fl.ram_mib)),
                      b.tx_at(t), b.rx_at(t), b.disk_fill * fl.disk_gib);
                if (fl.cpu_pinned) {
                    d.pinned_cores += static_cast<double>(fl.vcpus);
                }
                scrape_cpu_col_[i] = cpu_ratio;
                scrape_mem_col_[i] = mem_ratio;
            }
        }
    });

    // --- stage 2 (parallel): reduce shards per node + node snapshots ----
    // per node, partials merge in shard order 0..N — a fixed grouping —
    // and evaluate_node is pure, so snapshots land in disjoint buffer slots
    run_sharded(scrape_nodes_.size(),
                [&](unsigned, std::size_t n_begin, std::size_t n_end) {
        for (std::size_t k = n_begin; k < n_end; ++k) {
            const scrape_node& sn = scrape_nodes_[k];
            node_demand total = shard_demand_[0][sn.node_idx];
            for (unsigned s = 1; s < scrape_shard_count; ++s) {
                total.merge(shard_demand_[s][sn.node_idx]);
            }
            demand_scratch_[sn.node_idx] = total;
            // crashed / in-maintenance hosts export nothing (white cells),
            // like planned unavailability; node_down_ is all-zero when the
            // fault layer is off, so this branch reduces to the old check
            const bool available =
                sn.meta->available_at(t) && node_down_[sn.node_idx] == 0;
            node_avail_buf_[k] = available ? 1 : 0;
            if (!available) {
                node_snap_buf_[k] = node_snapshot{};
                continue;
            }
            const double cpu_factor = node_cpu_factor_[sn.node_idx];
            if (cpu_factor == 1.0) {
                // untouched profile: the exact pre-fault float path
                node_snap_buf_[k] = evaluate_node(sn.nr->profile(), total,
                                                  config_.sampling_interval);
            } else {
                // degraded host: contention is evaluated against the
                // shrunken effective core count (sci::fault degrade window)
                hardware_profile degraded = sn.nr->profile();
                degraded.pcpu_cores = std::max<std::int32_t>(
                    1, static_cast<std::int32_t>(std::lround(
                           cpu_factor *
                           static_cast<double>(degraded.pcpu_cores))));
                node_snap_buf_[k] =
                    evaluate_node(degraded, total, config_.sampling_interval);
            }
        }
    });

    // --- stage 3: batch the scrape, then shard the ingest ----------------
    // All of the scrape's samples are gathered into one batch in the
    // canonical (serial) order, then handed to the store's sharded
    // append: the store partitions by series hash, so each worker owns a
    // disjoint set of series and every aggregate's float order matches
    // the serial funnel exactly (one sample per series per scrape).
    scrape_batch_.clear();
    scrape_batch_.reserve(2 * n_active + 7 * scrape_nodes_.size() +
                          4 * bb_series_.size() + 1);
    for (std::size_t i = 0; i < n_active; ++i) {
        const std::uint32_t slot = active_slots_[i];
        scrape_batch_.push_back({slot_cpu_series_[slot], scrape_cpu_col_[i]});
        scrape_batch_.push_back({slot_mem_series_[slot], scrape_mem_col_[i]});
    }

    // per-node series + per-BB contention; scrape_nodes_ is cluster-major,
    // so one running_stats accumulates each cluster's available nodes.
    // Feed the scheduler the *hottest* node of each BB: mean contention
    // washes out single noisy-neighbor nodes the filter should react to.
    running_stats bb_contention_stats;
    std::uint32_t current_cluster = 0;
    bool have_cluster = false;
    const auto flush_cluster = [&] {
        if (!have_cluster || bb_contention_stats.empty()) return;
        double& ewma = bb_contention_ewma_[static_cast<std::size_t>(
            clusters_[current_cluster].bb().value())];
        ewma = 0.7 * ewma + 0.3 * bb_contention_stats.max();
    };
    for (std::size_t k = 0; k < scrape_nodes_.size(); ++k) {
        const scrape_node& sn = scrape_nodes_[k];
        if (!have_cluster || sn.cluster_idx != current_cluster) {
            flush_cluster();
            bb_contention_stats = running_stats{};
            current_cluster = sn.cluster_idx;
            have_cluster = true;
        }
        if (node_avail_buf_[k] == 0) continue;  // white heatmap cell
        const node_snapshot& snap = node_snap_buf_[k];
        const node_series& s = node_series_[sn.node_idx];
        scrape_batch_.push_back({s.cpu_util, snap.cpu_util_pct});
        scrape_batch_.push_back({s.contention, snap.cpu_contention_pct});
        scrape_batch_.push_back({s.ready, snap.cpu_ready_ms});
        scrape_batch_.push_back({s.mem, snap.mem_usage_pct});
        scrape_batch_.push_back({s.tx, snap.tx_kbps});
        scrape_batch_.push_back({s.rx, snap.rx_kbps});
        scrape_batch_.push_back({s.disk, snap.storage_used_gib});
        bb_contention_stats.add(snap.cpu_contention_pct);
    }
    flush_cluster();

    // --- per-BB placement gauges (Nova MySQL exporter) -------------------
    for (const building_block& bb : f.bbs()) {
        const provider_inventory& inv = placement_.inventory(bb.id);
        const provider_usage& use = placement_.usage(bb.id);
        const bb_series& s = bb_series_[static_cast<std::size_t>(bb.id.value())];
        scrape_batch_.push_back({s.vcpus,
                                 static_cast<double>(inv.total_pcpus) *
                                     inv.cpu_allocation_ratio});
        scrape_batch_.push_back(
            {s.vcpus_used, static_cast<double>(use.vcpus_used)});
        scrape_batch_.push_back({s.mem, static_cast<double>(inv.total_ram_mib)});
        scrape_batch_.push_back(
            {s.mem_used, static_cast<double>(use.ram_used_mib)});
    }
    scrape_batch_.push_back(
        {instances_series_,
         static_cast<double>(placement_.allocation_count())});

    store_.append_batch(t, scrape_batch_,
                        [this](std::size_t count,
                               const thread_pool::range_fn& fn) {
                            run_sharded(count, fn);
                        });

    // streaming export: a scrape in day D means every day < D is complete
    // (simulation time is monotone), so seal and free them
    if (raw_stream_sink_) {
        const int day = static_cast<int>(day_index(t));
        if (day - 1 > store_.raw_sealed_through()) {
            store_.seal_raw_through(day - 1, raw_stream_sink_);
        }
    }

    ++stats_.scrapes;
    if (bp_ != nullptr) {
        // Backpressure tick, once per scrape: shed overdue queue entries
        // and re-evaluate the queuing/shedding regime.  Evaluating regime
        // transitions only here (never at admit time) is what rules out
        // flapping — consecutive flips are at least one sampling interval
        // apart by construction.
        bp_expire_overdue(t);
        if (bp_->update_regime(t)) ++stats_.bp_regime_transitions;
    }
    if (probes_.after_scrape) probes_.after_scrape(t);
    const sim_time next = t + config_.sampling_interval;
    if (next < observation_window) {
        queue_.schedule_at(next, engine_event{engine_event::action::scrape});
    }
}

void sim_engine::drs_pass(sim_time t) {
    const vm_cpu_demand_fn demand = [this, t](vm_id vm) {
        return vm_cpu_demand_cores(vm, t);
    };
    const vm_flavor_fn flavor_of = [this](vm_id vm) -> const flavor& {
        return scenario_.catalog.get(vms_.get(vm).flavor);
    };
    // Fleet-mean cluster imbalance under this pass's demand snapshot,
    // computed only when the invariant probe asked for it (the walk is
    // pure — no RNG, no state — so the run is unchanged either way).
    const auto mean_imbalance = [&]() {
        double sum = 0.0;
        for (const drs_cluster& cluster : clusters_) {
            sum += cluster.imbalance(demand);
        }
        return clusters_.empty()
                   ? 0.0
                   : sum / static_cast<double>(clusters_.size());
    };
    const double imbalance_before =
        probes_.drs_imbalance ? mean_imbalance() : 0.0;

    // Fan the per-cluster *planning* across the pool: plan_rebalance is
    // const — each cluster's plan is computed against a frozen copy of its
    // node runtimes, so the fan-out never mutates shared placement state
    // (the demand/flavor oracles stay pure per VM; a VM resides in exactly
    // one cluster, so even the lazy behavior-cache fills land in disjoint
    // slots pre-sized at setup).
    drs_moved_buf_.resize(clusters_.size());
    run_sharded(clusters_.size(),
                [&](unsigned, std::size_t begin, std::size_t end) {
        for (std::size_t c = begin; c < end; ++c) {
            drs_moved_buf_[c] = clusters_[c].plan_rebalance(demand, flavor_of);
        }
    });

    // Commit serially in cluster order — reservations move, bookkeeping
    // and events fire, and abort draws happen in exactly the order the old
    // eager loop produced, so runs stay bit-identical at any worker count.
    for (std::size_t c = 0; c < clusters_.size(); ++c) {
        drs_cluster& cluster = clusters_[c];
        cluster.begin_pass();
        for (const drs_migration& m : drs_moved_buf_[c]) {
            if (migration_aborted()) {
                // pre-copy failed mid-stream (sci::fault): the VM never
                // left its source — the planned move is simply not
                // committed; bill the wasted pre-copy bandwidth (exactly
                // once per move; record_abort asserts the VM wasn't
                // already charged)
                cluster.abort_migration(m);
                ++stats_.migration_aborts;
                stats_.wasted_migration_seconds +=
                    estimate_vm_migration(m.vm, t).total_seconds;
                continue;
            }
            cluster.commit_migration(
                m, scenario_.catalog.get(vms_.get(m.vm).flavor));
            vm_record& rec = vms_.get_mutable(m.vm);
            rec.placed_node = m.to;
            slot_move(m.vm, m.to);
            ++rec.migration_count;
            ++stats_.drs_migrations;
            account_migration(m.vm, t);
            events_.record(lifecycle_event{.t = t,
                                           .kind = lifecycle_event_kind::migrate,
                                           .vm = m.vm,
                                           .bb = cluster.bb(),
                                           .from = m.from,
                                           .to = m.to});
        }
    }
    if (probes_.drs_imbalance) {
        probes_.drs_imbalance(t, imbalance_before, mean_imbalance());
    }
    const sim_time next = t + config_.drs_interval;
    if (next < observation_window) {
        queue_.schedule_at(next, engine_event{engine_event::action::drs_pass});
    }
}

void sim_engine::cross_bb_pass(sim_time t) {
    const cross_bb_rebalancer rebalancer(scenario_.infrastructure,
                                         scenario_.catalog, config_.cross_bb);
    cross_bb_inputs inputs;
    inputs.vms_of_bb = [this](bb_id bb) {
        std::vector<vm_id> out;
        for (const node_runtime& nr : cluster_of(bb).nodes()) {
            out.insert(out.end(), nr.residents().begin(), nr.residents().end());
        }
        // per-node lists are id-sorted but interleave across nodes
        std::sort(out.begin(), out.end());
        return out;
    };
    inputs.flavor_of = [this](vm_id vm) -> const flavor& {
        return scenario_.catalog.get(vms_.get(vm).flavor);
    };
    inputs.resident_mib = [this, t](vm_id vm) {
        const vm_record& rec = vms_.get(vm);
        const flavor& f = scenario_.catalog.get(rec.flavor);
        return static_cast<mebibytes>(
            behavior_of(vm).mem_ratio_at(t, t - rec.created_at) *
            static_cast<double>(f.ram_mib));
    };
    inputs.dirty_rate = [this, t](vm_id vm) {
        const flavor& f = scenario_.catalog.get(vms_.get(vm).flavor);
        return estimate_dirty_rate(vm_cpu_demand_cores(vm, t),
                                   f.wclass == workload_class::hana_db);
    };

    // Speculate every planned move's destination node as a batch on the
    // pool (initial_placement is a pure read of the target cluster), each
    // stamped with its cluster's usage version.  The serial commit below
    // consumes a target only while the version still matches — then the
    // cluster is bitwise what the speculation saw, so the target equals
    // the recompute the old serial loop did — and otherwise drops the
    // batch tail and re-speculates it against the live clusters (an
    // earlier commit or abort rollback moved usage mid-batch).
    const std::vector<cross_bb_move> moves = rebalancer.plan(placement_, inputs);
    speculate_cross_bb_targets(moves, 0);

    for (std::size_t i = 0; i < moves.size(); ++i) {
        const cross_bb_move& move = moves[i];
        vm_record& rec = vms_.get_mutable(move.vm);
        const flavor& f = scenario_.catalog.get(rec.flavor);
        drs_cluster& to_cluster = cluster_of(move.to);
        if (cross_bb_targets_[i].version != to_cluster.usage_version()) {
            stats_.rebalance_target_invalidated +=
                static_cast<std::uint64_t>(moves.size() - i);
            speculate_cross_bb_targets(moves, i);
        }
        ++stats_.rebalance_targets_used;
        const std::optional<node_id> target = cross_bb_targets_[i].node;
        if (!target.has_value()) continue;  // node-level fragmentation
        if (migration_aborted()) {
            // the cross-BB pre-copy failed; nothing was committed yet, so
            // only the wasted bandwidth is billed
            ++stats_.migration_aborts;
            stats_.wasted_migration_seconds += move.estimate.total_seconds;
            continue;
        }
        const node_id old_node = rec.placed_node;
        placement_.move(move.vm, move.to, f);
        cluster_of(move.from).remove(move.vm, f, old_node);
        to_cluster.place(move.vm, f, *target);
        rec.placed_bb = move.to;
        rec.placed_node = *target;
        slot_move(move.vm, *target);
        ++rec.migration_count;
        ++stats_.cross_bb_moves;
        stats_.migration_seconds += move.estimate.total_seconds;
        stats_.max_migration_downtime_ms =
            std::max(stats_.max_migration_downtime_ms, move.estimate.downtime_ms);
        events_.record(lifecycle_event{.t = t,
                                       .kind = lifecycle_event_kind::migrate,
                                       .vm = move.vm,
                                       .bb = move.to,
                                       .from = old_node,
                                       .to = *target});
    }
    const sim_time next = t + config_.cross_bb_interval;
    if (next < observation_window) {
        queue_.schedule_at(next,
                           engine_event{engine_event::action::cross_bb_pass});
    }
}

void sim_engine::speculate_cross_bb_targets(
    const std::vector<cross_bb_move>& moves, std::size_t from) {
    // Pure per-move reads: initial_placement scans the target cluster's
    // nodes, the flavor resolves through const registries, and every
    // worker writes only its own disjoint target slots — deterministic at
    // any worker count.
    cross_bb_targets_.resize(moves.size());
    run_sharded(moves.size() - from,
                [&](unsigned, std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
            const std::size_t i = from + k;
            const flavor& f =
                scenario_.catalog.get(vms_.get(moves[i].vm).flavor);
            const drs_cluster& cluster = cluster_of(moves[i].to);
            cross_bb_targets_[i] = {cluster.initial_placement(f),
                                    cluster.usage_version()};
        }
    });
    stats_.rebalance_target_speculations +=
        static_cast<std::uint64_t>(moves.size() - from);
}

void sim_engine::schedule_resizes() {
    if (config_.daily_resize_fraction <= 0.0) return;
    rng_stream rng(config_.scenario.seed, "resizes");
    // each VM resizes within the window with probability fraction * 30 d
    const double p = std::min(1.0, config_.daily_resize_fraction *
                                       static_cast<double>(observation_days));
    const auto consider = [&](const vm_plan& plan) {
        if (!rng.chance(p)) return;
        // pick an instant while the VM is alive and inside the window
        const sim_time lo = std::max<sim_time>(plan.created_at + 1, 1);
        const sim_time hi =
            std::min<sim_time>(plan.deleted_at.value_or(observation_window),
                               observation_window) -
            1;
        if (hi <= lo) return;
        const auto at = static_cast<sim_time>(
            rng.uniform(static_cast<double>(lo), static_cast<double>(hi)));
        queue_.schedule_at(at, engine_event{engine_event::action::resize_vm,
                                            plan.vm.value()});
    };
    for (const vm_plan& plan : population_plan_.initial) consider(plan);
    for (const vm_plan& plan : population_plan_.arrivals) consider(plan);
}

void sim_engine::resize_vm(vm_id vm, sim_time t) {
    vm_record& rec = vms_.get_mutable(vm);
    if (rec.state != vm_state::active) return;
    const flavor& old_flavor = scenario_.catalog.get(rec.flavor);

    // target: the neighbouring catalog flavor of the same workload class
    // (50/50 grow or shrink, mirroring right-sizing in both directions)
    rng_stream rng = rng_stream(config_.scenario.seed, "resize-target")
                         .child(static_cast<std::uint64_t>(vm.value()));
    const bool grow = rng.chance(0.5);
    const flavor* target = nullptr;
    for (const flavor& f : scenario_.catalog.all()) {
        if (f.wclass != old_flavor.wclass || f.id == old_flavor.id) continue;
        if (grow) {
            if (f.ram_mib <= old_flavor.ram_mib) continue;
            if (target == nullptr || f.ram_mib < target->ram_mib) target = &f;
        } else {
            if (f.ram_mib >= old_flavor.ram_mib) continue;
            if (target == nullptr || f.ram_mib > target->ram_mib) target = &f;
        }
    }
    if (target == nullptr) return;  // already at the catalog edge

    // swap the allocation in place on the current building block / node
    drs_cluster& cluster = cluster_of(rec.placed_bb);
    node_runtime& node = cluster.node(rec.placed_node);
    placement_.release(vm, old_flavor);
    node.remove(vm, old_flavor);
    bool admitted = false;
    try {
        placement_.claim(vm, rec.placed_bb, *target);
        admitted = true;
    } catch (const capacity_error&) {
    }
    if (admitted && node.fits(*target, cluster.config().cpu_allocation_ratio,
                              cluster.config().ram_allocation_ratio)) {
        node.place(vm, *target);
    } else if (admitted) {
        // current node too full: DRS picks another node in the cluster
        const std::optional<node_id> other = cluster.initial_placement(*target);
        if (other.has_value()) {
            cluster.place(vm, *target, *other);
            rec.placed_node = *other;
            slot_move(vm, *other);
            ++rec.migration_count;
        } else {
            placement_.release(vm, *target);
            admitted = false;
        }
    }
    if (!admitted) {
        // fleet rejects the resize: restore the old reservation.  reclaim,
        // not claim — when an allocation ratio was retuned below live usage
        // (fork-arm overcommit sweeps), the capacity re-check would refuse
        // to give back what this VM just released.
        placement_.reclaim(vm, rec.placed_bb, old_flavor);
        node.place(vm, old_flavor);
        ++stats_.resize_failures;
        return;
    }

    rec.flavor = target->id;
    ++stats_.resizes;
    // the workload changed size: re-hoist the flavor column and resample
    // the behavior column (pure, so eager == the old lazy resample)
    slot_reflavor(rec);
    events_.record(lifecycle_event{.t = t,
                                   .kind = lifecycle_event_kind::resize,
                                   .vm = vm,
                                   .bb = rec.placed_bb,
                                   .from = rec.placed_node,
                                   .to = rec.placed_node});
}

// ---------------------------------------------------------------------------
// fault injection & HA recovery
// ---------------------------------------------------------------------------

void sim_engine::setup_faults() {
    if (!config_.fault.enabled()) return;
    const fault_config& fc = config_.fault;
    ha_ = std::make_unique<ha_controller>(fc.ha_retry_backoff,
                                          fc.ha_max_restart_attempts);
    if (fc.migration_abort_probability > 0.0) {
        mig_abort_rng_.emplace(config_.scenario.seed, "fault-migration-aborts");
    }
    if (fc.claim_failure_probability > 0.0) {
        // sequential draws are safe: the hook only fires from the serial
        // event loop (placements, HA restarts), never from pool workers
        claim_fault_rng_.emplace(config_.scenario.seed, "fault-claim-races");
        conductor_->set_claim_fault([this](vm_id, bb_id, int) {
            return claim_fault_rng_->chance(
                config_.fault.claim_failure_probability);
        });
    }
    for (const fault_event& event : compile_fault_schedule(
             fc, scenario_.infrastructure, config_.scenario.seed)) {
        queue_.schedule_at(
            event.t, engine_event{engine_event::action::fault, -1, event});
    }
}

void sim_engine::apply_fault(const fault_event& event, sim_time t) {
    // AZ outages address a zone, not a node: dispatch before the node
    // lookup below (event.node is unset for them)
    if (event.kind == fault_event_kind::az_outage_begin) {
        begin_az_outage(event.az, t);
        return;
    }
    if (event.kind == fault_event_kind::az_outage_end) {
        end_az_outage(event.az, t);
        return;
    }
    const auto idx = static_cast<std::size_t>(event.node.value());
    const compute_node& meta = scenario_.infrastructure.get(event.node);
    node_runtime& nr = cluster_of(meta.bb).node(event.node);
    switch (event.kind) {
        case fault_event_kind::host_crash:
            crash_node(event.node, t);
            break;
        case fault_event_kind::host_repair:
            node_down_[idx] = 0;
            if (meta.available_at(t)) nr.set_accepting(true);
            if (bp_ != nullptr) bp_drain_wanted_ = true;
            break;
        case fault_event_kind::degrade_begin:
            node_cpu_factor_[idx] = event.cpu_factor;
            break;
        case fault_event_kind::degrade_end:
            node_cpu_factor_[idx] = 1.0;
            break;
        case fault_event_kind::maintenance_begin:
            if (node_down_[idx] != 0) break;  // already crashed: skip
            nr.set_accepting(false);
            node_down_[idx] = 1;
            stats_.maintenance_evacuations +=
                evacuate_node(event.node, t, lifecycle_event_kind::evacuate);
            break;
        case fault_event_kind::maintenance_end:
            node_down_[idx] = 0;
            if (meta.available_at(t)) nr.set_accepting(true);
            if (bp_ != nullptr) bp_drain_wanted_ = true;
            break;
        case fault_event_kind::az_outage_begin:
        case fault_event_kind::az_outage_end:
            break;  // dispatched above, before the node lookup
    }
}

void sim_engine::crash_node(node_id node, sim_time t) {
    const compute_node& meta = scenario_.infrastructure.get(node);
    drs_cluster& cluster = cluster_of(meta.bb);
    node_runtime& nr = cluster.node(node);
    nr.set_accepting(false);
    node_down_[static_cast<std::size_t>(node.value())] = 1;
    ++stats_.host_crashes;

    // every resident dies with the host; HA re-places the whole detection
    // epoch as ONE batch after the failure-detection delay, through the
    // real conductor
    const std::vector<vm_id> victims(nr.residents().begin(),
                                     nr.residents().end());  // id-sorted
    for (const vm_id vm : victims) {
        vm_record& rec = vms_.get_mutable(vm);
        const flavor& f = scenario_.catalog.get(rec.flavor);
        cluster.remove(vm, f, node);
        placement_.release(vm, f);
        rec.state = vm_state::pending;  // down until HA re-places it
        active_erase(vm);
        ++stats_.crash_victims;
        events_.record(lifecycle_event{.t = t,
                                       .kind = lifecycle_event_kind::crash,
                                       .vm = vm,
                                       .bb = meta.bb,
                                       .from = node});
        ha_->on_crash(vm, t);
    }
    if (!victims.empty()) {
        enqueue_ha_group(t + config_.fault.ha_restart_delay,
                         std::move(victims));
    }
}

void sim_engine::begin_az_outage(az_id az, sim_time t) {
    ++stats_.az_outages;
    // Crash every in-service host of the zone at the same instant: one
    // detection epoch.  Each node's victims enqueue at t + restart_delay,
    // so the whole zone's standing population re-places as consecutive
    // due-together groups through the batched speculate/commit pipeline —
    // absorbed by the surviving zones (or NoValidHost when they cannot).
    // Hosts that are already down (crashed or in maintenance) keep their
    // own repair clock and are not re-crashed.
    for (const bb_id bb : scenario_.infrastructure.bbs_of_az(az)) {
        for (const node_id node : scenario_.infrastructure.get(bb).nodes) {
            const auto idx = static_cast<std::size_t>(node.value());
            if (node_down_[idx] != 0) continue;
            node_az_down_[idx] = 1;
            crash_node(node, t);
        }
    }
}

void sim_engine::end_az_outage(az_id az, sim_time t) {
    for (const bb_id bb : scenario_.infrastructure.bbs_of_az(az)) {
        for (const node_id node : scenario_.infrastructure.get(bb).nodes) {
            const auto idx = static_cast<std::size_t>(node.value());
            if (node_az_down_[idx] == 0) continue;  // not ours to repair
            node_az_down_[idx] = 0;
            node_down_[idx] = 0;
            const compute_node& meta = scenario_.infrastructure.get(node);
            if (meta.available_at(t)) {
                cluster_of(meta.bb).node(node).set_accepting(true);
            }
        }
    }
    if (bp_ != nullptr) bp_drain_wanted_ = true;
}

void sim_engine::enqueue_ha_group(sim_time due, std::vector<vm_id> victims) {
    // The single drain event reserves its heap slot exactly where the old
    // code scheduled the group's FIRST per-victim restart: the victims'
    // events held consecutive sequence numbers with nothing in between, so
    // collapsing them onto the first slot preserves the tie order against
    // every other event.  One live drain event exists per queued group;
    // each drain consumes exactly the front group, and groups sharing a
    // due time fire in enqueue order — the order their events hold.
    auto it = std::upper_bound(
        ha_groups_.begin(), ha_groups_.end(), due,
        [](sim_time d, const ha_group& g) { return d < g.due; });
    ha_groups_.insert(it, ha_group{due, std::move(victims)});
    queue_.schedule_at(due,
                       engine_event{engine_event::action::drain_ha_restarts});
}

void sim_engine::drain_ha_restarts(sim_time t) {
    const auto wall_begin = std::chrono::steady_clock::now();
    expects(!ha_groups_.empty() && ha_groups_.front().due == t,
            "sim_engine::drain_ha_restarts: no victim group due");
    const ha_group group = std::move(ha_groups_.front());
    ha_groups_.pop_front();

    const bool speculative = !config_.holistic;
    std::vector<vm_id> failed;  // victims granted another attempt
    for (std::size_t v = 0; v < group.victims.size(); ++v) {
        const vm_id vm = group.victims[v];
        if (!ha_->pending(vm)) {
            // deleted while down; consume its slot if it was speculated
            if (ha_spec_active_ && ha_spec_cursor_ < ha_spec_vms_.size() &&
                ha_spec_vms_[ha_spec_cursor_] == vm) {
                ++ha_spec_cursor_;
                ++stats_.recovery_speculation_cancelled;
            }
            continue;
        }
        const host_speculation* spec = nullptr;
        if (speculative) {
            // Re-checked per victim: the batch may span groups (and so
            // stay open across events), and even mid-drain the forced-fit
            // failure path releases the claim it just made.
            if (ha_spec_active_ &&
                (placement_.shrink_version() != ha_spec_shrink_version_ ||
                 (config_.contention_aware && stats_.scrapes != ha_spec_scrapes_))) {
                stats_.recovery_speculation_invalidated +=
                    static_cast<std::uint64_t>(ha_spec_vms_.size() -
                                               ha_spec_cursor_);
                ha_spec_active_ = false;
            }
            if (!ha_spec_active_ || ha_spec_cursor_ >= ha_spec_vms_.size()) {
                speculate_recovery_batch(t, group.victims, v);
                // the fresh batch starts at this victim by construction
                expects(ha_spec_vms_[ha_spec_cursor_] == vm,
                        "sim_engine::drain_ha_restarts: batch out of order");
            }
            // Covered groups drain in due order, so their victims find
            // themselves at the cursor.  A group enqueued after the batch
            // was speculated (a retry round, a fresh crash epoch) can
            // drain between two covered groups when its due time lands
            // there: its victims hold no slot and place unspeculated,
            // leaving the batch open for the next covered group — the
            // claim counters keep the untouched slots exact.
            if (ha_spec_vms_[ha_spec_cursor_] == vm) {
                spec = &ha_spec_slots_[ha_spec_cursor_];
                ++ha_spec_cursor_;
            }
        }
        const std::uint64_t spec_ok = conductor_->speculative_placement_count();
        const std::uint64_t spec_miss = conductor_->speculation_miss_count();
        const bool placed = place_vm(vm, t, lifecycle_event_kind::ha_restart,
                                     spec, ha_spec_claim_counts_);
        stats_.recovery_speculative_placements +=
            conductor_->speculative_placement_count() - spec_ok;
        stats_.recovery_speculation_misses +=
            conductor_->speculation_miss_count() - spec_miss;
        if (placed) {
            ha_->on_restart_success(vm, t);
            ++stats_.ha_restarts;
            continue;
        }
        ++stats_.ha_restart_failures;
        if (ha_->on_restart_failure(vm, t).has_value()) {
            failed.push_back(vm);
        } else if (bp_ != nullptr) {
            // attempts exhausted: hand the victim to the backpressure
            // layer instead of abandoning it (it may still place when
            // capacity comes back, or shed with an explicit reason)
            bp_admit(vm, t, bp_request_kind::ha_restart,
                     bp_queued_request::no_deletion);
        } else {
            // attempts exhausted — the victim stays down
            // (vm_state::error), but never silently: the give-up is a
            // shed event and a counted stat
            ++stats_.ha_give_ups;
            events_.record(lifecycle_event{
                .t = t,
                .kind = lifecycle_event_kind::shed,
                .vm = vm,
                .reason = schedule_fail_reason::ha_attempts_exhausted});
        }
    }
    if (ha_spec_active_ && ha_spec_cursor_ >= ha_spec_vms_.size()) {
        ha_spec_active_ = false;  // batch fully consumed
    }
    if (!failed.empty()) {
        // one retry group per drain: the old code scheduled the per-victim
        // retries back to back (nothing else allocates sequence numbers
        // between two failures), so a single event in the first retry's
        // slot replays them in the same order relative to everything else
        enqueue_ha_group(t + config_.fault.ha_retry_backoff, std::move(failed));
    }
    stats_.recovery_placement_wall_ms +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_begin)
            .count();
}

void sim_engine::speculate_recovery_batch(sim_time t,
                                          const std::vector<vm_id>& victims,
                                          std::size_t from) {
    // batch = the still-pending victims from `victims[from]` onward plus
    // the queued groups due within the current scrape interval (the
    // longest stretch over which the contention feed is stationary),
    // capped at placement_batch_size
    const sim_time horizon =
        (t / config_.sampling_interval + 1) * config_.sampling_interval;
    ha_spec_vms_.clear();
    sim_time last_due = t;
    for (std::size_t i = from; i < victims.size(); ++i) {
        if (ha_spec_vms_.size() >= placement_batch_size) break;
        if (ha_->pending(victims[i])) ha_spec_vms_.push_back(victims[i]);
    }
    for (const ha_group& g : ha_groups_) {
        if (g.due >= horizon || ha_spec_vms_.size() >= placement_batch_size) {
            break;
        }
        for (const vm_id vm : g.victims) {
            if (ha_spec_vms_.size() >= placement_batch_size) break;
            if (!ha_->pending(vm)) continue;
            ha_spec_vms_.push_back(vm);
            last_due = g.due;
        }
    }
    const std::size_t count = ha_spec_vms_.size();
    // the caller only speculates for a victim that is still pending, so
    // the batch is never empty
    if (ha_spec_slots_.size() < count) {
        ha_spec_slots_.resize(count);
        ha_spec_requests_.resize(count);
    }
    const filter_scheduler& scheduler = conductor_->scheduler();
    // serial prep: requests (policy sampling stays on the main thread)
    for (std::size_t i = 0; i < count; ++i) {
        const vm_record& rec = vms_.get(ha_spec_vms_[i]);
        schedule_request& rq = ha_spec_requests_[i];
        rq = schedule_request{};
        rq.vm = rec.id;
        rq.flavor = rec.flavor;
        rq.project = rec.project;
        rq.policy = policy_for(rec.id, scenario_.catalog.get(rec.flavor));
    }
    // immutable snapshot of the live host view for this batch
    spec_snapshot_ = conductor_->host_states();  // copy reuses capacity
    conductor_->snapshot_claim_counts(ha_spec_claim_counts_);
    run_sharded(count, [&](unsigned, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            const schedule_request& rq = ha_spec_requests_[i];
            const request_context ctx{rq, scenario_.catalog.get(rq.flavor)};
            scheduler.speculate(ctx, spec_snapshot_, ha_spec_slots_[i]);
        }
    });
    ha_spec_cursor_ = 0;
    ha_spec_shrink_version_ = placement_.shrink_version();
    ha_spec_scrapes_ = stats_.scrapes;
    ha_spec_active_ = true;
    ++stats_.recovery_batches;
    stats_.recovery_speculations += static_cast<std::uint64_t>(count);
    recovery_batch_spans_.push_back(
        {t, last_due, static_cast<std::uint32_t>(count)});
}

bool sim_engine::migration_aborted() {
    return mig_abort_rng_.has_value() &&
           mig_abort_rng_->chance(config_.fault.migration_abort_probability);
}

std::uint64_t sim_engine::transient_claim_failures() const {
    return conductor_ != nullptr ? conductor_->transient_claim_failure_count()
                                 : 0;
}

void sim_engine::active_insert(vm_id vm) {
    const auto idx = static_cast<std::size_t>(vm.value());
    if (vm_slot_.size() <= idx) vm_slot_.resize(idx + 1, no_slot);
    expects(vm_slot_[idx] == no_slot,
            "sim_engine::active_insert: vm already active");

    // fill a slot (recycled or fresh) from the finished record
    std::uint32_t slot;
    if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(slot_vm_.size());
        slot_vm_.emplace_back();
        slot_node_.emplace_back();
        slot_flavor_.emplace_back();
        slot_created_.emplace_back();
        slot_cpu_series_.emplace_back();
        slot_mem_series_.emplace_back();
        slot_behavior_.emplace_back();
    }
    const vm_record& rec = vms_.get(vm);
    vm_slot_[idx] = slot;
    slot_vm_[slot] = vm;
    slot_node_[slot] = static_cast<std::uint32_t>(rec.placed_node.value());
    slot_flavor_[slot] = &scenario_.catalog.get(rec.flavor);
    slot_created_[slot] = rec.created_at;
    slot_cpu_series_[slot] = series_id{};
    slot_mem_series_[slot] = series_id{};
    slot_behavior_[slot] = behaviors_.sample(
        vm, scenario_.catalog.get(rec.flavor), rec.project);

    // keep the canonical walk order: active_slots_ is sorted by vm id
    const auto it = std::lower_bound(
        active_slots_.begin(), active_slots_.end(), vm,
        [this](std::uint32_t s, vm_id v) { return slot_vm_[s] < v; });
    active_slots_.insert(it, slot);
}

void sim_engine::active_erase(vm_id vm) {
    const auto idx = static_cast<std::size_t>(vm.value());
    expects(idx < vm_slot_.size() && vm_slot_[idx] != no_slot,
            "sim_engine::active_erase: vm not active");
    const std::uint32_t slot = vm_slot_[idx];
    const auto it = std::lower_bound(
        active_slots_.begin(), active_slots_.end(), vm,
        [this](std::uint32_t s, vm_id v) { return slot_vm_[s] < v; });
    expects(it != active_slots_.end() && *it == slot,
            "sim_engine::active_erase: slot index out of sync");
    active_slots_.erase(it);
    vm_slot_[idx] = no_slot;
    free_slots_.push_back(slot);
}

void sim_engine::slot_move(vm_id vm, node_id node) {
    const std::uint32_t slot = slot_of(vm);
    expects(slot != no_slot, "sim_engine::slot_move: vm not active");
    slot_node_[slot] = static_cast<std::uint32_t>(node.value());
}

void sim_engine::slot_reflavor(const vm_record& rec) {
    const std::uint32_t slot = slot_of(rec.id);
    expects(slot != no_slot, "sim_engine::slot_reflavor: vm not active");
    slot_flavor_[slot] = &scenario_.catalog.get(rec.flavor);
    slot_behavior_[slot] = behaviors_.sample(
        rec.id, scenario_.catalog.get(rec.flavor), rec.project);
}

// ---------------------------------------------------------------------------
// conductor backpressure
// ---------------------------------------------------------------------------

void sim_engine::setup_backpressure() {
    if (!config_.backpressure.active()) return;
    expects(config_.backpressure.queue_capacity > 0,
            "sim_engine: backpressure queue_capacity must be positive");
    expects(config_.backpressure.queue_deadline > 0,
            "sim_engine: backpressure queue_deadline must be positive");
    bp_ = std::make_unique<backpressure_controller>(config_.backpressure);
    // Capacity releases (deletions, crash victims, evacuations, cross-BB
    // moves) arm the pinned drain event for the same instant.  The
    // bp_draining_ guard keeps the drain's own quiet placement attempts
    // from re-arming it forever: a failed node-level claim releases the
    // provider reservation it just took.
    placement_.set_release_listener([this] {
        if (!bp_draining_) bp_drain_wanted_ = true;
    });
}

void sim_engine::bp_admit(vm_id vm, sim_time t, bp_request_kind kind,
                          sim_time deleted_at) {
    bp_queued_request req;
    req.vm = vm;
    req.kind = kind;
    if (kind == bp_request_kind::ha_restart) {
        // HA victims held capacity until their crash: recovering them
        // outranks admitting new work of either policy.
        req.priority = 2;
    } else {
        const vm_record& rec = vms_.get(vm);
        req.priority = policy_for(vm, scenario_.catalog.get(rec.flavor)) ==
                               placement_policy::pack
                           ? 1
                           : 0;
    }
    req.enqueued_at = t;
    req.deadline = t + config_.backpressure.queue_deadline;
    req.deleted_at = deleted_at;
    const auto admitted = bp_->admit(req);
    if (admitted.evicted.has_value()) {
        ++stats_.bp_shed_evicted;
        bp_shed(*admitted.evicted, t,
                schedule_fail_reason::shed_lower_priority);
    }
    using outcome = backpressure_controller::admit_result::outcome;
    if (admitted.result == outcome::queued) {
        ++stats_.bp_enqueued;
        stats_.bp_peak_queue_len =
            std::max<std::uint64_t>(stats_.bp_peak_queue_len, bp_->size());
    } else {
        ++stats_.bp_shed_queue_full;
        bp_shed(req, t, schedule_fail_reason::queue_full);
    }
}

void sim_engine::bp_shed(const bp_queued_request& req, sim_time t,
                         schedule_fail_reason reason) {
    vms_.get_mutable(req.vm).state = vm_state::error;
    events_.record(lifecycle_event{.t = t,
                                   .kind = lifecycle_event_kind::shed,
                                   .vm = req.vm,
                                   .reason = reason});
}

void sim_engine::bp_expire_overdue(sim_time t) {
    for (const bp_queued_request& req : bp_->expire(t)) {
        if (req.kind == bp_request_kind::create &&
            req.deleted_at != bp_queued_request::no_deletion &&
            req.deleted_at <= t) {
            // the owner's planned deletion already passed: had the VM
            // placed it would be gone by now — retire it as a deletion,
            // not a shed
            vm_record& rec = vms_.get_mutable(req.vm);
            rec.state = vm_state::deleted;
            rec.deleted_at = req.deleted_at;
            ++stats_.deletions;
            ++stats_.bp_cancelled;
            events_.record(lifecycle_event{
                .t = t, .kind = lifecycle_event_kind::remove, .vm = req.vm});
        } else {
            ++stats_.bp_shed_deadline;
            bp_shed(req, t, schedule_fail_reason::deadline_expired);
        }
    }
}

void sim_engine::drain_backpressure(sim_time t) {
    bp_drain_armed_ = false;
    bp_draining_ = true;
    // Overdue entries first: capacity releases can land between scrapes,
    // and a request must never place after its deadline passed.
    bp_expire_overdue(t);
    // Retry the remaining queue in FIFO (= deadline) order.  A quiet
    // failure keeps the entry queued — later entries still get their try
    // (a smaller flavor may fit where the head does not).
    std::size_t i = 0;
    while (i < bp_->size()) {
        const bp_queued_request req = bp_->at(i);
        if (req.kind == bp_request_kind::create &&
            req.deleted_at != bp_queued_request::no_deletion &&
            req.deleted_at <= t) {
            vm_record& rec = vms_.get_mutable(req.vm);
            rec.state = vm_state::deleted;
            rec.deleted_at = req.deleted_at;
            ++stats_.deletions;
            ++stats_.bp_cancelled;
            events_.record(lifecycle_event{
                .t = t, .kind = lifecycle_event_kind::remove, .vm = req.vm});
            bp_->erase(i);
            continue;
        }
        const lifecycle_event_kind kind =
            req.kind == bp_request_kind::ha_restart
                ? lifecycle_event_kind::ha_restart
                : lifecycle_event_kind::create;
        if (place_vm(req.vm, t, kind, nullptr, {}, /*quiet_fail=*/true)) {
            ++stats_.bp_queue_placed;
            if (req.kind == bp_request_kind::create &&
                req.deleted_at != bp_queued_request::no_deletion) {
                queue_.schedule_at(req.deleted_at,
                                   engine_event{engine_event::action::delete_vm,
                                                req.vm.value()});
            }
            bp_->erase(i);
            continue;
        }
        ++i;
    }
    bp_draining_ = false;
    bp_drain_wanted_ = false;
}

void sim_engine::maybe_arm_bp_drain(sim_time t) {
    if (!bp_drain_wanted_) return;
    bp_drain_wanted_ = false;
    if (bp_->empty() || bp_drain_armed_) return;
    bp_drain_armed_ = true;
    queue_.schedule_at_pinned(
        t, bp_drain_seq_,
        engine_event{engine_event::action::drain_backpressure});
}

drs_cluster& sim_engine::cluster_of(bb_id bb) {
    expects(bb.valid() && static_cast<std::size_t>(bb.value()) < clusters_.size(),
            "sim_engine::cluster_of: unknown building block");
    return clusters_[static_cast<std::size_t>(bb.value())];
}

double sim_engine::bb_contention(bb_id bb) const {
    const auto idx = static_cast<std::size_t>(bb.value());
    return idx < bb_contention_ewma_.size() ? bb_contention_ewma_[idx] : 0.0;
}

}  // namespace sci
