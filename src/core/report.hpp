#pragma once

// Markdown report generator: renders the full paper-vs-measured comparison
// (every Section 5 artifact) from a finished simulation run.  scisim's
// `report --markdown` writes this; EXPERIMENTS.md is curated from it.

#include <iosfwd>
#include <string>

#include "core/engine.hpp"

namespace sci {

struct report_options {
    /// Include the ASCII heatmap previews (large).
    bool include_heatmaps = true;
    /// Title line of the document.
    std::string title = "SAP Cloud Infrastructure reproduction — measured vs. paper";
};

/// Write the markdown report for a *finished* engine run.
void write_markdown_report(std::ostream& os, sim_engine& engine,
                           const report_options& options = {});

/// Convenience: report as a string.
std::string markdown_report(sim_engine& engine,
                            const report_options& options = {});

}  // namespace sci
