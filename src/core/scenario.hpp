#pragma once

// Scenario presets: fleet construction for the studied deployments.
//
// regional(): the paper's studied region (Table 5, region 9): two DCs with
// 751 and 1,072 hypervisors and ~48,000 VMs, scaled by `scale` so figure
// benches run in minutes (scale=1.0 reproduces the full deployment).
//
// global_fleet(): all 29 data centers of Appendix D / Table 5 with their
// exact hypervisor counts (used by tab5_datacenter_overview).

#include <cstdint>

#include "infra/fleet.hpp"
#include "infra/flavor.hpp"
#include "workload/flavor_mix.hpp"

namespace sci {

struct scenario_config {
    /// Linear scale on node and VM counts (1.0 = the paper's region).
    double scale = 0.1;
    std::uint64_t seed = 42;
    /// Fraction of *nodes* dedicated to each BB purpose.  Sized so the
    /// flavor mix of Tables 1–2 fits: HANA (0.5–2 TB flavors) on 8 TB
    /// hosts, >= 3 TB flavors on dedicated 16 TB hosts.
    double hana_node_fraction = 0.16;
    double dedicated_xl_node_fraction = 0.10;
    /// Fraction of nodes held as failover/scalability reserve: monitored
    /// but never scheduled (the paper's explanation for the consistently
    /// near-idle hosts of Figure 5).
    double reserve_node_fraction = 0.06;
};

/// A constructed scenario: fleet + flavor catalog + mix + derived sizes.
struct scenario {
    fleet infrastructure;
    flavor_catalog catalog;
    flavor_mix mix;
    region_id region;
    int target_vm_population = 0;  ///< VMs alive at window start

    scenario(fleet f, flavor_catalog c, flavor_mix m, region_id r, int pop)
        : infrastructure(std::move(f)),
          catalog(std::move(c)),
          mix(std::move(m)),
          region(r),
          target_vm_population(pop) {}
};

/// Build the studied regional deployment at the given scale.
scenario make_regional_scenario(const scenario_config& config = {});

/// Row of the Table 5 overview.
struct dc_spec {
    int region_id;
    const char* dc_name;
    int hypervisors;
    int vms;
};

/// The 29 data centers of Table 5 (exact published counts).
std::span<const dc_spec> table5_datacenters();

/// Build the entire global fleet of Table 5 (hypervisor counts exact;
/// building-block partitioning synthetic).
scenario make_global_scenario(std::uint64_t seed = 42);

}  // namespace sci
