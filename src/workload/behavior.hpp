#pragma once

// Per-VM workload behavior.
//
// Each VM gets a behavior sampled deterministically from its id: a mean
// CPU utilization ratio (calibrated to the Figure 14a CDF), a mean memory
// residency ratio (Figure 14b), diurnal/weekly modulation (the weekday
// effect of Figures 8/9), multiplicative hash-noise, and optional
// heavy-tailed bursts (the ready-time spikes of Figure 8).
//
// Demand evaluation is *stateless*: cpu_ratio_at(t) is a pure function of
// (vm seed, t), so any instant can be sampled in any order — replays,
// resumed runs and parallel evaluation all see identical traces.

#include <cstdint>

#include "infra/flavor.hpp"
#include "infra/ids.hpp"
#include "simcore/rng.hpp"
#include "simcore/time.hpp"
#include "simcore/units.hpp"

namespace sci {

/// Smooth deterministic value noise in [0, 1): linear interpolation of
/// per-bucket hashes.  `pos` is a continuous bucket coordinate.
double smooth_hash_noise(std::uint64_t seed, double pos);

/// Behavioral parameters of one VM (fixed at creation).
struct vm_behavior {
    std::uint64_t seed = 0;      ///< drives all per-instant noise
    double cpu_mean_ratio = 0.2; ///< target average of cpu usage ratio
    double mem_mean_ratio = 0.8; ///< target average of memory consumed ratio
    double diurnal_amplitude = 0.0;
    bool bursty = false;         ///< heavy-tailed spikes (CI/CD-like)
    /// False for batch/CI tenants that run nights and weekends too; their
    /// load does not follow the business-hours curve, which keeps the
    /// contention *maximum* persistent across the week (Figure 9: "does
    /// not show temporal effects, implying a persistent problem").
    bool business_hours = true;
    /// Seed of the burst process.  Derived from the owning *project*, so
    /// VMs of one tenant spike together — the "time-synchronous events"
    /// the paper names as a contention root cause (Section 7).
    std::uint64_t burst_seed = 0;
    double mem_growth_per_day = 0.0;  ///< slow residency growth (some VMs)
    kbps tx_kbps_mean = 0.0;
    kbps rx_kbps_mean = 0.0;
    double disk_fill = 0.5;      ///< fraction of flavor disk allocated

    /// Instantaneous CPU usage ratio in [0, 1] (fraction of allocated vCPU).
    double cpu_ratio_at(sim_time t) const;

    /// Instantaneous memory consumed ratio in [0, 1].
    /// `age` is time since the VM's creation (drives slow growth).
    double mem_ratio_at(sim_time t, sim_duration age) const;

    /// Instantaneous NIC traffic.
    kbps tx_at(sim_time t) const;
    kbps rx_at(sim_time t) const;
};

/// Samples vm_behavior deterministically per VM id, calibrated per
/// workload class (see workload/calibration.hpp).
class behavior_model {
public:
    explicit behavior_model(std::uint64_t master_seed);

    /// Behavior for a VM of the given flavor owned by the given project.
    /// Pure in (vm, flavor, project).
    vm_behavior sample(vm_id vm, const flavor& f,
                       project_id project = project_id(0)) const;

private:
    std::uint64_t master_seed_;
};

/// Lifetime sampler (Figure 15): lognormal per workload class, clamped to
/// [2 min, 6 y].  Pure in (vm, flavor).
class lifetime_model {
public:
    explicit lifetime_model(std::uint64_t master_seed);

    sim_duration sample(vm_id vm, const flavor& f) const;

private:
    std::uint64_t master_seed_;
};

}  // namespace sci
