#include "workload/forecast.hpp"

#include <cmath>

#include "simcore/error.hpp"

namespace sci {

demand_forecaster::demand_forecaster(forecaster_config config)
    : config_(config) {
    expects(config_.level_alpha > 0.0 && config_.level_alpha <= 1.0,
            "demand_forecaster: level_alpha in (0,1]");
    expects(config_.seasonal_alpha > 0.0 && config_.seasonal_alpha <= 1.0,
            "demand_forecaster: seasonal_alpha in (0,1]");
    seasonal_.fill(1.0);
}

void demand_forecaster::observe(sim_time t, double value) {
    expects(std::isfinite(value), "demand_forecaster::observe: non-finite value");
    abs_error_sum_ += std::abs(value - forecast(t));

    const std::size_t slot = season_slot(t);
    if (count_ == 0) {
        level_ = value;
    } else {
        const double factor = seasonal_[slot];
        const double deseasonalized = factor > 1e-9 ? value / factor : value;
        level_ = (1.0 - config_.level_alpha) * level_ +
                 config_.level_alpha * deseasonalized;
    }
    if (level_ > 1e-9) {
        const double observed_factor = value / level_;
        if (!seasonal_seen_[slot]) {
            seasonal_[slot] = observed_factor;
            seasonal_seen_[slot] = true;
        } else {
            seasonal_[slot] = (1.0 - config_.seasonal_alpha) * seasonal_[slot] +
                              config_.seasonal_alpha * observed_factor;
        }
    }
    ++count_;

    // keep level and season identifiable: the seasonal template must stay
    // mean-1 (level shifts otherwise leak into the factors and linger)
    if (count_ % 168 == 0) {
        double sum = 0.0;
        int seen = 0;
        for (std::size_t i = 0; i < seasonal_.size(); ++i) {
            if (seasonal_seen_[i]) {
                sum += seasonal_[i];
                ++seen;
            }
        }
        if (seen > 0 && sum > 1e-9) {
            const double mean = sum / static_cast<double>(seen);
            for (std::size_t i = 0; i < seasonal_.size(); ++i) {
                if (seasonal_seen_[i]) seasonal_[i] /= mean;
            }
            level_ *= mean;
        }
    }
}

double demand_forecaster::forecast(sim_time t) const {
    if (count_ < static_cast<std::uint64_t>(config_.warmup_observations)) {
        return level_;
    }
    return level_ * seasonal_[season_slot(t)];
}

}  // namespace sci
