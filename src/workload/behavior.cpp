#include "workload/behavior.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "workload/calibration.hpp"

namespace sci {

namespace cal = calibration;

namespace {

/// Per-bucket hash to [0, 1).
double bucket_hash(std::uint64_t seed, std::int64_t bucket) {
    const std::uint64_t h =
        splitmix64(seed ^ splitmix64(static_cast<std::uint64_t>(bucket) +
                                     0x9e3779b97f4a7c15ULL));
    return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

double smoothstep(double x) { return x * x * (3.0 - 2.0 * x); }

/// Diurnal × weekly multiplicative curve, normalized to mean 1 over a
/// week so a VM's realized average utilization matches its sampled mean.
double weekly_curve(sim_time t, double amplitude) {
    // business-hours sine peaking at 14:00 local; zero-mean over a day
    const double hour = static_cast<double>(second_of_day(t)) / 3600.0;
    const double day_shape =
        std::sin((hour - 8.0) / 24.0 * 2.0 * std::numbers::pi);
    double v = 1.0 + amplitude * day_shape;
    if (is_weekend(t)) v *= cal::weekend_activity_factor;
    // weekly mean of the weekend dip: (5 + 2*f) / 7
    constexpr double weekly_mean = (5.0 + 2.0 * cal::weekend_activity_factor) / 7.0;
    return v / weekly_mean;
}

/// Multiplicative two-octave noise, mean ≈ 1.
double noise_curve(std::uint64_t seed, sim_time t, double amplitude) {
    const double fast = smooth_hash_noise(seed, static_cast<double>(t) / 3600.0);
    const double slow =
        smooth_hash_noise(splitmix64(seed), static_cast<double>(t) / 21600.0);
    const double blended = 0.6 * fast + 0.4 * slow;  // in [0, 1)
    return 1.0 + amplitude * (2.0 * blended - 1.0);
}

/// Heavy-tailed burst multiplier for bursty VMs: per-30-minute bucket, a
/// ~1.5% chance of a spike of 3x up to burst_spike_multiplier_max.  The
/// seed is project-derived, so one tenant's VMs spike *together* — the
/// "time-synchronous events" of Section 7 — and co-located tenants drive
/// the >40% contention outliers of Figure 9 and the ready-time spikes of
/// Figure 8.
double burst_curve(std::uint64_t seed, sim_time t) {
    const std::int64_t bucket = t / minutes(30);
    const double u = bucket_hash(splitmix64(seed ^ 0xb5297a4d3f2c1e0bULL), bucket);
    if (u > 0.015) return 1.0;
    // reuse the low bits of u for the spike height
    const double v = u / 0.015;
    return 3.0 + v * (cal::burst_spike_multiplier_max - 3.0);
}

}  // namespace

double smooth_hash_noise(std::uint64_t seed, double pos) {
    const double floor_pos = std::floor(pos);
    const auto bucket = static_cast<std::int64_t>(floor_pos);
    const double frac = pos - floor_pos;
    const double a = bucket_hash(seed, bucket);
    const double b = bucket_hash(seed, bucket + 1);
    return a + (b - a) * smoothstep(frac);
}

double vm_behavior::cpu_ratio_at(sim_time t) const {
    double v = cpu_mean_ratio;
    if (business_hours) v *= weekly_curve(t, diurnal_amplitude);
    v *= noise_curve(seed, t, cal::noise_amplitude);
    if (bursty) v *= burst_curve(burst_seed, t);
    return clamp_ratio(v);
}

double vm_behavior::mem_ratio_at(sim_time t, sim_duration age) const {
    double v = mem_mean_ratio;
    // memory moves far less than CPU: small noise, no business-hours swing
    v *= noise_curve(splitmix64(seed ^ 0x6d5f3c1b2a498675ULL), t, 0.05);
    v += mem_growth_per_day * (static_cast<double>(age) / 86400.0);
    return clamp_ratio(v);
}

kbps vm_behavior::tx_at(sim_time t) const {
    return tx_kbps_mean * weekly_curve(t, diurnal_amplitude) *
           noise_curve(splitmix64(seed ^ 0x1f83d9abfb41bd6bULL), t,
                       cal::noise_amplitude);
}

kbps vm_behavior::rx_at(sim_time t) const {
    return rx_kbps_mean * weekly_curve(t, diurnal_amplitude) *
           noise_curve(splitmix64(seed ^ 0x5be0cd19137e2179ULL), t,
                       cal::noise_amplitude);
}

behavior_model::behavior_model(std::uint64_t master_seed)
    : master_seed_(master_seed) {}

vm_behavior behavior_model::sample(vm_id vm, const flavor& f,
                                   project_id project) const {
    rng_stream rng = rng_stream(master_seed_, "behavior")
                         .child(static_cast<std::uint64_t>(vm.value()));
    vm_behavior b;
    b.seed = splitmix64(master_seed_ ^
                        splitmix64(static_cast<std::uint64_t>(vm.value())));
    b.burst_seed = splitmix64(
        master_seed_ ^ 0x709394a5b1c2d3e4ULL ^
        splitmix64(static_cast<std::uint64_t>(project.value()) + 1));

    // --- CPU mean ratio: band mixture calibrated to Figure 14a ----------
    if (f.wclass == workload_class::hana_db) {
        // in-memory databases are memory-sized; their CPU allocation is
        // generous and rarely saturated (they sit deep in Figure 14a's
        // underutilized band)
        b.cpu_mean_ratio = rng.uniform(0.10, 0.55);
    } else if (f.wclass == workload_class::s4hana_app) {
        // ABAP application servers are sized for memory and peak headroom:
        // mostly calm, but a tail of busy systems exists — on the packed
        // app-server building blocks that tail is what produces the >40%
        // contention outliers of Figure 9 while the fleet envelope stays low
        if (rng.chance(0.88)) {
            b.cpu_mean_ratio = rng.uniform(0.05, 0.50);
        } else {
            b.cpu_mean_ratio = rng.uniform(0.50, 0.95);
        }
    } else {
        const double bands[] = {cal::cpu_low_band_weight,
                                cal::cpu_mid_band_weight,
                                cal::cpu_optimal_band_weight,
                                cal::cpu_over_band_weight};
        switch (rng.pick_weighted(bands)) {
            case 0: b.cpu_mean_ratio = rng.uniform(0.02, 0.55); break;
            case 1: b.cpu_mean_ratio = rng.uniform(0.55, 0.70); break;
            case 2: b.cpu_mean_ratio = rng.uniform(0.70, 0.85); break;
            default: b.cpu_mean_ratio = rng.uniform(0.85, 0.98); break;
        }
    }

    // --- memory mean ratio: Figure 14b; HANA sits in the high band ------
    if (f.wclass == workload_class::hana_db) {
        b.mem_mean_ratio = rng.uniform(cal::hana_mem_ratio_lo, cal::hana_mem_ratio_hi);
    } else {
        const double mem_bands[] = {cal::mem_low_band_weight,
                                    cal::mem_optimal_band_weight,
                                    cal::mem_high_band_weight};
        switch (rng.pick_weighted(mem_bands)) {
            case 0: b.mem_mean_ratio = rng.uniform(0.15, 0.70); break;
            case 1: b.mem_mean_ratio = rng.uniform(0.70, 0.85); break;
            default: b.mem_mean_ratio = rng.uniform(0.85, 0.99); break;
        }
    }

    // --- modulation ------------------------------------------------------
    b.diurnal_amplitude = f.wclass == workload_class::hana_db
                              ? cal::hana_diurnal_amplitude
                              : cal::gp_diurnal_amplitude;
    b.bursty = f.wclass == workload_class::general_purpose &&
               rng.chance(cal::bursty_vm_fraction);
    // half the bursty tenants are batch/CI systems active around the clock
    if (b.bursty && rng.chance(0.5)) b.business_hours = false;

    // a minority of VMs exhibit the slow memory growth visible in Fig. 10
    if (rng.chance(0.10)) {
        b.mem_growth_per_day = rng.uniform(0.001, 0.01);
    }

    // --- network ----------------------------------------------------------
    const double per_vcpu_tx = rng.lognormal(cal::net_tx_kbps_per_vcpu_mu,
                                             cal::net_tx_kbps_per_vcpu_sigma);
    b.tx_kbps_mean = per_vcpu_tx * static_cast<double>(f.vcpus);
    b.rx_kbps_mean = b.tx_kbps_mean * cal::net_rx_asymmetry;

    // --- storage ----------------------------------------------------------
    b.disk_fill = rng.uniform(cal::disk_fill_lo, cal::disk_fill_hi);
    return b;
}

lifetime_model::lifetime_model(std::uint64_t master_seed)
    : master_seed_(master_seed) {}

sim_duration lifetime_model::sample(vm_id vm, const flavor& f) const {
    rng_stream rng = rng_stream(master_seed_, "lifetime")
                         .child(static_cast<std::uint64_t>(vm.value()));
    double mu = cal::gp_lifetime_mu;
    double sigma = cal::gp_lifetime_sigma;
    if (f.wclass == workload_class::hana_db) {
        mu = cal::hana_lifetime_mu;
        sigma = cal::hana_lifetime_sigma;
    } else if (f.wclass == workload_class::s4hana_app) {
        mu = cal::s4app_lifetime_mu;
        sigma = cal::s4app_lifetime_sigma;
    }
    const double secs = std::clamp(rng.lognormal(mu, sigma),
                                   cal::lifetime_min_seconds,
                                   cal::lifetime_max_seconds);
    return static_cast<sim_duration>(secs);
}

}  // namespace sci
