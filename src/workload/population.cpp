#include "workload/population.hpp"

#include <algorithm>
#include <cmath>

#include "simcore/error.hpp"

namespace sci {

namespace {

project_id sample_project(rng_stream& rng, int project_count) {
    // Zipf-like tenant sizes via a bounded Pareto over project indices.
    const double raw = rng.bounded_pareto(0.8, 1.0, static_cast<double>(project_count) + 0.999);
    return project_id(static_cast<std::int32_t>(raw) - 1);
}

}  // namespace

population build_population(const population_config& config,
                            const flavor_catalog& catalog,
                            const flavor_mix& mix,
                            const lifetime_model& lifetimes,
                            vm_registry& registry) {
    expects(config.initial_population >= 0,
            "build_population: negative population");
    expects(config.daily_churn_fraction >= 0.0,
            "build_population: negative churn");
    expects(config.project_count > 0, "build_population: need >= 1 project");

    rng_stream rng(config.seed, "population");
    population pop;
    pop.initial.reserve(static_cast<std::size_t>(config.initial_population));

    // ---- standing population at t = 0 ---------------------------------
    for (int i = 0; i < config.initial_population; ++i) {
        const flavor_id fid = mix.sample(rng);
        const flavor& f = catalog.get(fid);
        const project_id project = sample_project(rng, config.project_count);

        // Draw a placeholder id first to keep lifetime/behavior pure in the
        // final vm_id: create the record, then derive everything from it.
        const vm_id vm = registry.create(fid, project, /*created_at=*/0);
        const sim_duration lifetime = lifetimes.sample(vm, f);
        const auto age = static_cast<sim_duration>(
            rng.uniform(0.0, 1.0) * static_cast<double>(lifetime));
        const sim_time created_at = -age;
        const sim_time dies_at = created_at + lifetime;

        vm_record& rec = registry.get_mutable(vm);
        rec.created_at = created_at;

        vm_plan plan{.vm = vm, .created_at = created_at};
        if (dies_at < observation_window) {
            plan.deleted_at = std::max<sim_time>(dies_at, 1);
        }
        pop.initial.push_back(plan);
    }

    // ---- churn inside the window ---------------------------------------
    const double arrivals_per_day =
        static_cast<double>(config.initial_population) *
        config.daily_churn_fraction;
    const double expected_arrivals =
        arrivals_per_day * static_cast<double>(observation_days);
    // homogeneous Poisson process: exponential inter-arrival times
    const double mean_gap =
        expected_arrivals > 0.0
            ? static_cast<double>(observation_window) / expected_arrivals
            : 0.0;
    if (mean_gap > 0.0) {
        double t = rng.exponential_mean(mean_gap);
        while (t < static_cast<double>(observation_window)) {
            const flavor_id fid = mix.sample(rng);
            const flavor& f = catalog.get(fid);
            const project_id project = sample_project(rng, config.project_count);
            const auto created_at = static_cast<sim_time>(t);
            const vm_id vm = registry.create(fid, project, created_at);
            const sim_duration lifetime = lifetimes.sample(vm, f);

            vm_plan plan{.vm = vm, .created_at = created_at};
            const sim_time dies_at = created_at + lifetime;
            if (dies_at < observation_window) {
                plan.deleted_at = dies_at;
            }
            pop.arrivals.push_back(plan);
            t += rng.exponential_mean(mean_gap);
        }
    }
    return pop;
}

}  // namespace sci
