#pragma once

// Calibration constants for the synthetic workload generator.
//
// We do not have SAP's proprietary telemetry, so every distribution here is
// pinned to a *published* statistic of the paper (the comment names it).
// EXPERIMENTS.md reports paper-vs-measured for each one.  Keeping the
// numbers in one header makes the calibration auditable and easy to sweep.

#include <cstdint>

namespace sci::calibration {

// ---------------------------------------------------------------------------
// Fleet sizing (Section 3, Appendix D)
// ---------------------------------------------------------------------------

/// The studied regional deployment: ~1,800 hypervisors, ~48,000 VMs.
inline constexpr int regional_nodes = 1800;
inline constexpr int regional_vms = 48000;

/// Building block sizes "range from 2 to 128 active compute nodes".
inline constexpr int bb_min_nodes = 2;
inline constexpr int bb_max_nodes = 128;

// ---------------------------------------------------------------------------
// VM CPU utilization ratio (Figure 14a)
//
// Paper: "over 80% of VMs using less than 70% of the provided resources";
// Figure 14a: most VMs overprovisioned, small optimal band, tiny over band.
// Mixture over the mean utilization of a VM: weights of the four bands.
// ---------------------------------------------------------------------------

inline constexpr double cpu_low_band_weight = 0.80;   ///< mean in [0.02, 0.55)
inline constexpr double cpu_mid_band_weight = 0.08;   ///< mean in [0.55, 0.70)
inline constexpr double cpu_optimal_band_weight = 0.07;  ///< [0.70, 0.85)
inline constexpr double cpu_over_band_weight = 0.05;  ///< [0.85, 0.98)

// ---------------------------------------------------------------------------
// VM memory consumed ratio (Figure 14b)
//
// Paper: ~38% of VMs < 70% (underutilized), ~10% in 70–85%, ~52% > 85%.
// HANA DB VMs sit almost entirely in the high band (in-memory databases
// keep data resident); general purpose is mixed.
// ---------------------------------------------------------------------------

inline constexpr double mem_low_band_weight = 0.38;
inline constexpr double mem_optimal_band_weight = 0.10;
inline constexpr double mem_high_band_weight = 0.52;

/// HANA DB VMs: memory residency band [lo, hi).
inline constexpr double hana_mem_ratio_lo = 0.85;
inline constexpr double hana_mem_ratio_hi = 0.98;

// ---------------------------------------------------------------------------
// Diurnal / weekly modulation (Figures 8, 9: "less workload and thus less
// contention on weekends and more during the working days")
// ---------------------------------------------------------------------------

/// Peak-to-mean amplitude of the workday business-hours curve for general
/// purpose workloads (HANA DB is much steadier).
inline constexpr double gp_diurnal_amplitude = 0.45;
inline constexpr double hana_diurnal_amplitude = 0.10;
inline constexpr double weekend_activity_factor = 0.65;

/// Multiplicative hash-noise band around the deterministic curve.
inline constexpr double noise_amplitude = 0.30;

/// Probability per VM of being a "bursty" tenant (CI/CD-like) whose load
/// shows heavy-tailed spikes; drives the ready-time outliers of Figure 8.
inline constexpr double bursty_vm_fraction = 0.08;
inline constexpr double burst_spike_multiplier_max = 8.0;

// ---------------------------------------------------------------------------
// Overcommit (Section 7 "the overcommit factor should be reconsidered")
// ---------------------------------------------------------------------------

/// Default Nova allocation ratios per BB purpose.  General purpose BBs run
/// a high vCPU:pCPU ratio (industry practice; the source of contention),
/// HANA BBs are kept near 1:1 on memory.
inline constexpr double gp_cpu_allocation_ratio = 3.5;
inline constexpr double gp_ram_allocation_ratio = 1.0;
inline constexpr double hana_cpu_allocation_ratio = 2.0;
inline constexpr double hana_ram_allocation_ratio = 1.0;

// ---------------------------------------------------------------------------
// Lifetimes (Figure 15: minutes to multiple years; weak size correlation)
// ---------------------------------------------------------------------------

/// Lognormal (of seconds) parameters per coarse class; chosen so medians
/// land in the hours–months range with tails from minutes to years.
inline constexpr double gp_lifetime_mu = 15.3;     ///< median ~ 51 d
inline constexpr double gp_lifetime_sigma = 2.5;
inline constexpr double hana_lifetime_mu = 16.6;   ///< median ~ 188 d
inline constexpr double hana_lifetime_sigma = 1.7;
inline constexpr double s4app_lifetime_mu = 16.0;  ///< median ~ 103 d
inline constexpr double s4app_lifetime_sigma = 2.0;

/// Clamp lifetimes into [2 min, 6 years].
inline constexpr double lifetime_min_seconds = 120.0;
inline constexpr double lifetime_max_seconds = 6.0 * 365.0 * 86400.0;

// ---------------------------------------------------------------------------
// Network / storage (Sections 5.3, 5.4)
// ---------------------------------------------------------------------------

/// Paper: network load "notably below" the 200 Gbps NIC capacity.  Mean
/// per-VM traffic in kbps per vCPU; heavy tail via lognormal.
inline constexpr double net_tx_kbps_per_vcpu_mu = 9.2;   ///< lognormal mu
inline constexpr double net_tx_kbps_per_vcpu_sigma = 1.4;
inline constexpr double net_rx_asymmetry = 1.25;  ///< rx slightly above tx

/// Storage (Figure 13): "18% of hosts show more than 90% free storage, and
/// 7% ... more than 30%"; VM disk fill ratio band.
inline constexpr double disk_fill_lo = 0.15;
inline constexpr double disk_fill_hi = 0.95;

// ---------------------------------------------------------------------------
// Churn
// ---------------------------------------------------------------------------

/// Fraction of the steady-state population that also turns over per day;
/// chosen so in-window arrivals roughly balance the departures implied by
/// the residual-lifetime sampling (~1.7%/day), keeping the standing
/// population's Tables 1-2 composition stable.
inline constexpr double daily_churn_fraction = 0.018;

/// Fraction of nodes that undergo an operational change (added/removed)
/// during the window — the white cells of the heatmaps.
inline constexpr double node_churn_fraction = 0.03;

}  // namespace sci::calibration
