#include "workload/flavor_mix.hpp"

#include "simcore/error.hpp"

namespace sci {

flavor_mix flavor_mix::standard(flavor_catalog& catalog) {
    using wc = workload_class;
    struct spec {
        const char* name;
        core_count vcpus;
        double ram_gib;
        double disk_gib;
        wc cls;
        double weight;  // percent of population
    };
    // Joint (vCPU class, RAM class) cell targets (percent):
    //   (S,S)=2.19 (S,M)=60.53 (M,M)=30.00 (M,L)=1.00 (M,XL)=0.62
    //   (L,M)=0.73 (L,L)=0.74 (L,XL)=2.57 (XL,XL)=1.63
    // -> vCPU marginals 62.72/31.62/4.04/1.63, RAM 2.19/91.26/1.74/4.82.
    static const spec specs[] = {
        // (S,S): tiny utility VMs
        {"g_c1_m2", 1, 2, 20, wc::general_purpose, 1.10},
        {"g_c2_m2", 2, 2, 20, wc::general_purpose, 1.09},
        // (S,M): the bulk of the general-purpose fleet
        {"g_c2_m8", 2, 8, 50, wc::general_purpose, 12.53},
        {"g_c2_m16", 2, 16, 50, wc::general_purpose, 18.00},
        {"g_c4_m16", 4, 16, 100, wc::general_purpose, 10.00},
        {"g_c4_m32", 4, 32, 100, wc::general_purpose, 20.00},
        // (M,M): medium general purpose + small S/4 app servers
        {"g_c8_m32", 8, 32, 200, wc::general_purpose, 8.00},
        {"g_c8_m64", 8, 64, 200, wc::general_purpose, 12.00},
        {"a_c16_m64", 16, 64, 200, wc::s4hana_app, 10.00},
        // (M,L)/(M,XL): larger S/4 application servers
        {"a_c16_m128", 16, 128, 400, wc::s4hana_app, 1.00},
        {"a_c16_m256", 16, 256, 400, wc::s4hana_app, 0.62},
        // (L,M)/(L,L): compute-heavy general purpose
        {"g_c32_m64", 32, 64, 400, wc::general_purpose, 0.73},
        {"g_c32_m128", 32, 128, 400, wc::general_purpose, 0.74},
        // (L,XL): mid-size HANA databases
        {"hana_c32_m512", 32, 512, 1024, wc::hana_db, 1.40},
        {"hana_c64_m1024", 64, 1024, 2048, wc::hana_db, 1.17},
        // (XL,XL): large HANA, up to the 12 TB per-VM maximum of Table 3
        {"hana_c96_m2048", 96, 2048, 4096, wc::hana_db, 0.80},
        {"hana_c112_m3072", 112, 3072, 6144, wc::hana_db, 0.40},
        {"hana_c224_m6144", 224, 6144, 12288, wc::hana_db, 0.30},
        {"hana_c224_m12288", 224, 12288, 24576, wc::hana_db, 0.13},
    };

    std::vector<flavor_weight> weights;
    weights.reserve(std::size(specs));
    for (const spec& s : specs) {
        const flavor_id id = catalog.add(s.name, s.vcpus, gib_to_mib(s.ram_gib),
                                         s.disk_gib, s.cls);
        weights.push_back(flavor_weight{id, s.weight / 100.0});
    }
    return flavor_mix(std::move(weights));
}

flavor_mix::flavor_mix(std::vector<flavor_weight> weights)
    : weights_(std::move(weights)) {
    expects(!weights_.empty(), "flavor_mix: need at least one flavor");
    raw_weights_.reserve(weights_.size());
    for (const flavor_weight& w : weights_) {
        expects(w.weight > 0.0, "flavor_mix: weights must be positive");
        raw_weights_.push_back(w.weight);
    }
}

flavor_id flavor_mix::sample(rng_stream& rng) const {
    return weights_[rng.pick_weighted(raw_weights_)].id;
}

std::vector<std::pair<flavor_id, double>> flavor_mix::expected_counts(
    double n) const {
    double total = 0.0;
    for (const flavor_weight& w : weights_) total += w.weight;
    std::vector<std::pair<flavor_id, double>> out;
    out.reserve(weights_.size());
    for (const flavor_weight& w : weights_) {
        out.emplace_back(w.id, n * w.weight / total);
    }
    return out;
}

}  // namespace sci
