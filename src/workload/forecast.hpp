#pragma once

// Demand forecasting.
//
// Section 7: "Our observations indicate that combining placement decisions
// with dynamic rescheduling mechanisms may help to achieve more balanced
// utilization.  Such a unified, ideally even proactive, approach may also
// reduce the number of required workload migrations."
//
// The forecaster learns, per observed entity (a building block, a node),
// an hour-of-week seasonal template plus an EWMA level — exactly the
// structure the workloads of Figures 8/9 exhibit (business-hours diurnal
// cycle, weekend dip, slowly drifting level).  forecast(t) extrapolates to
// any future instant; the proactive-scheduler ablation feeds it into the
// placement pipeline in place of the instantaneous contention signal.

#include <array>
#include <cstdint>

#include "simcore/time.hpp"

namespace sci {

struct forecaster_config {
    /// EWMA smoothing of the level (per observation).
    double level_alpha = 0.05;
    /// EWMA smoothing of each hour-of-week seasonal factor.
    double seasonal_alpha = 0.15;
    /// Observations required before forecasts leave the warm-up value.
    int warmup_observations = 24;
};

/// Holt-Winters-style multiplicative seasonal forecaster with a
/// 168-hour (hour-of-week) season.
class demand_forecaster {
public:
    explicit demand_forecaster(forecaster_config config = {});

    /// Feed one observation taken at time t.
    void observe(sim_time t, double value);

    /// Predict the value at (future or past) time t.
    double forecast(sim_time t) const;

    /// Smoothed deseasonalized level.
    double level() const { return level_; }

    std::uint64_t observation_count() const { return count_; }

    /// Mean absolute error of one-step-ahead forecasts so far (computed
    /// against each observation before it is absorbed).
    double mean_absolute_error() const {
        return count_ == 0 ? 0.0
                           : abs_error_sum_ / static_cast<double>(count_);
    }

private:
    static std::size_t season_slot(sim_time t) {
        // hour-of-week in [0, 168)
        const std::int64_t hours_since_start = t / seconds_per_hour;
        std::int64_t slot = (hours_since_start + 2 * 24) % 168;  // start = Wed
        if (slot < 0) slot += 168;
        return static_cast<std::size_t>(slot);
    }

    forecaster_config config_;
    double level_ = 0.0;
    std::array<double, 168> seasonal_{};
    std::array<bool, 168> seasonal_seen_{};
    std::uint64_t count_ = 0;
    double abs_error_sum_ = 0.0;
};

}  // namespace sci
