#pragma once

// The standard flavor catalog and its population mix.
//
// The mix is a joint distribution over (vCPU class, RAM class) whose
// marginals reproduce Table 1 (vCPU: 62.7% small / 31.6% medium / 4.0%
// large / 1.6% extra large) and Table 2 (RAM: 2.2% small / 91.3% medium /
// 1.7% large / 4.8% extra large) of the paper.  Within each joint cell we
// spread mass over a handful of realistic flavors: general purpose
// (g_*), S/4HANA application servers (a_*), and HANA in-memory databases
// (hana_*, up to the paper's 12 TB maximum).

#include <span>
#include <vector>

#include "infra/flavor.hpp"
#include "simcore/rng.hpp"

namespace sci {

struct flavor_weight {
    flavor_id id;
    double weight;  ///< population fraction (weights sum to ~1)
};

/// A sampling distribution over a flavor catalog.
class flavor_mix {
public:
    /// Register the standard flavors into `catalog` and return their mix.
    static flavor_mix standard(flavor_catalog& catalog);

    /// Construct from explicit weights (weights must be positive).
    explicit flavor_mix(std::vector<flavor_weight> weights);

    /// Sample one flavor according to the weights.
    flavor_id sample(rng_stream& rng) const;

    std::span<const flavor_weight> weights() const { return weights_; }

    /// Expected number of VMs of each flavor in a population of n.
    std::vector<std::pair<flavor_id, double>> expected_counts(double n) const;

private:
    std::vector<flavor_weight> weights_;
    std::vector<double> raw_weights_;  // cache for pick_weighted
};

}  // namespace sci
