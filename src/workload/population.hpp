#pragma once

// Population construction: the VM fleet alive at observation start plus
// churn (creations/deletions) inside the 30-day window.
//
// Initial VMs are given ages by residual sampling: lifetime L is drawn
// from the lifetime model and the VM has already lived U·L of it
// (U uniform), so the age distribution is consistent with a population in
// steady state and Figure 15's "minutes to years" lifetimes appear
// naturally.  Churn arrivals follow a homogeneous Poisson process at
// daily_churn_fraction of the standing population per day.

#include <optional>
#include <vector>

#include "infra/flavor.hpp"
#include "infra/ids.hpp"
#include "infra/vm.hpp"
#include "simcore/time.hpp"
#include "workload/behavior.hpp"
#include "workload/flavor_mix.hpp"

namespace sci {

struct population_config {
    /// VMs alive at window start (the paper's region: ~48,000).
    int initial_population = 48000;
    /// Arrivals per day as a fraction of the standing population.
    double daily_churn_fraction = 0.018;
    /// Number of tenants; VM→tenant assignment is Zipf-like.
    int project_count = 200;
    std::uint64_t seed = 42;
};

/// One VM lifecycle computed ahead of simulation: when it appears, and —
/// if its sampled lifetime ends inside the window — when it disappears.
struct vm_plan {
    vm_id vm;
    sim_time created_at;                 ///< may be far before the window
    std::optional<sim_time> deleted_at;  ///< inside the window, if any
};

/// A fully drawn population: registry entries exist (state pending);
/// plans tell the engine when to place/delete each instance.
struct population {
    std::vector<vm_plan> initial;   ///< alive at t = 0 (placed before start)
    std::vector<vm_plan> arrivals;  ///< created inside the window
};

/// Draw a population.  Creates pending records in `registry`.
population build_population(const population_config& config,
                            const flavor_catalog& catalog,
                            const flavor_mix& mix,
                            const lifetime_model& lifetimes,
                            vm_registry& registry);

}  // namespace sci
