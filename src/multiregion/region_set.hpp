#pragma once

// Multi-region scale-out: N independent regional deployments on one pool.
//
// The paper's dataset covers a single region (~1,800 hosts / ~48k VMs);
// production-scale guidance needs several regions running concurrently.
// A region_set owns one sim_engine per region — each a full deployment
// with its own fleet, conductor, DRS clusters, fault schedule, telemetry
// store, and RNG streams derived from a master seed + region id — and
// schedules the regions as coarse-grained tasks on ONE shared
// sci::thread_pool (thread_pool::run_tasks).  Two-level scheduling:
// regions fan out across the workers, and each region's internal sharded
// stages serialize inline on their claimant, so region parallelism
// composes with intra-region sharding instead of oversubscribing.  A
// single region (or a serial pool) runs on the caller with the workers
// idle, so its scrape shards still fan out.
//
// Determinism contract (the acceptance bar of PRs 1–7, extended): every
// region's output — stats, events, dataset export — is bit-identical to
// running that region alone with the same derived seed, at any
// SCI_THREADS / region-count combination.  Regions share no mutable
// state; results are merged in region order after the barrier.
//
// Aggregation: merged run_stats (merge_run_stats), per-region dataset
// exports into <dir>/<region>/, and cross-region files written by
// merge_region_exports — a combined manifest.csv summing per-region
// series counts and fleet_daily.csv with fleet-wide per-metric per-day
// aggregates.  Streaming export composes per region, so an 8-region ×
// scale-3.0 run (1M+ VMs) stays within the O(open-day) raw-residency
// budget of PR 6.

#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "data/dataset.hpp"
#include "data/streaming_writer.hpp"
#include "simcore/thread_pool.hpp"

namespace sci {

/// One region of a multi-region deployment: a name (export subdirectory,
/// diagnostics) plus a fully resolved engine config whose scenario seed
/// is the region's derived master seed.
struct region_spec {
    std::string name;
    engine_config config;
};

/// Build `regions` specs from a base config: region r is named
/// "region<r>" and seeded derive_region_seed(base.scenario.seed, r) (the
/// population seed follows the scenario seed, as everywhere else).
std::vector<region_spec> make_region_specs(const engine_config& base,
                                           std::size_t regions);

/// Sum of per-region run stats.  Counters and duration totals add;
/// max_migration_downtime_ms — a fleet-wide worst case — merges by max.
run_stats merge_run_stats(std::span<const run_stats> per_region);

struct region_export_report {
    dataset_export_report combined;  ///< sums over all regions
    std::vector<dataset_export_report> per_region;
};

/// Cross-region aggregation over per-region exports already under
/// `dir/<name>/`: writes `dir/manifest.csv` (per-metric series counts
/// summed across regions, metric order of the first region) and
/// `dir/fleet_daily.csv` (metric,day,count,mean,min,max — fleet-wide
/// merge of every region's daily aggregates, regions merged in the given
/// order so the arithmetic is deterministic).  Returns the combined
/// report counters.  Standalone so tests can aggregate solo-run exports
/// and compare bytes against a region_set export.
dataset_export_report merge_region_exports(
    const std::filesystem::path& dir,
    const std::vector<std::string>& region_names);

class region_set {
public:
    /// Construct one engine per spec, all sharing one pool of `threads`
    /// workers (nullopt = SCI_THREADS).  Asserts that no two regions
    /// share a derived master seed — identical seeds would make the
    /// "independent" regions replay each other's RNG streams.
    explicit region_set(std::vector<region_spec> specs,
                        std::optional<unsigned> threads = std::nullopt);

    /// Adopt pre-built engines (snapshot restore): `build(r, pool)` must
    /// return the engine for spec r, already set up (e.g. restored from a
    /// checkpoint) and wired to `pool` via set_shared_pool.  setup() on
    /// the result is a no-op; run/run_until continue the adopted
    /// timelines.
    using engine_builder =
        std::function<std::unique_ptr<sim_engine>(std::size_t, thread_pool&)>;
    region_set(std::vector<region_spec> specs, const engine_builder& build,
               std::optional<unsigned> threads = std::nullopt);

    std::size_t region_count() const { return engines_.size(); }
    sim_engine& region(std::size_t r) { return *engines_[r]; }
    const sim_engine& region(std::size_t r) const { return *engines_[r]; }
    const region_spec& spec(std::size_t r) const { return specs_[r]; }
    thread_pool& pool() { return pool_; }

    /// Fan region setups across the pool.  Idempotent.
    void setup();

    /// Play every region's full observation window (setup if needed).
    void run();

    /// Advance every region to `until` (setup if needed).
    void run_until(sim_time until);

    /// Fleet-wide aggregate of the per-region run stats.
    run_stats merged_stats() const;

    /// Attach a streaming dataset writer per region (raw residency stays
    /// O(open day) per region).  Call before setup(); finish with
    /// finish_streaming_export() after run().
    void enable_streaming_export(const std::filesystem::path& dir);

    /// Close the per-region streaming writers and write the cross-region
    /// aggregation files.
    region_export_report finish_streaming_export();

    /// Materialized export: every region into `dir/<name>/`, then the
    /// cross-region aggregation files into `dir`.
    region_export_report export_datasets(
        const std::filesystem::path& dir,
        const dataset_export_options& options = {});

private:
    std::vector<std::string> region_names() const;

    std::vector<region_spec> specs_;
    thread_pool pool_;
    std::vector<std::unique_ptr<sim_engine>> engines_;
    std::vector<std::unique_ptr<streaming_dataset_writer>> writers_;
    std::filesystem::path streaming_dir_;
    bool setup_done_ = false;
};

}  // namespace sci
