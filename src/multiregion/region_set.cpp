#include "multiregion/region_set.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <utility>

#include "data/csv.hpp"
#include "simcore/error.hpp"
#include "simcore/rng.hpp"

namespace sci {

std::vector<region_spec> make_region_specs(const engine_config& base,
                                           std::size_t regions) {
    expects(regions > 0, "make_region_specs: need at least one region");
    std::vector<region_spec> specs;
    specs.reserve(regions);
    for (std::size_t r = 0; r < regions; ++r) {
        region_spec spec;
        spec.name = "region" + std::to_string(r);
        spec.config = base;
        spec.config.scenario.seed = derive_region_seed(base.scenario.seed, r);
        spec.config.population.seed = spec.config.scenario.seed;
        specs.push_back(std::move(spec));
    }
    return specs;
}

run_stats merge_run_stats(std::span<const run_stats> per_region) {
    run_stats m;
    for (const run_stats& s : per_region) {
        m.placements += s.placements;
        m.placement_failures += s.placement_failures;
        m.scheduler_retries += s.scheduler_retries;
        m.drs_migrations += s.drs_migrations;
        m.evacuations += s.evacuations;
        m.forced_fits += s.forced_fits;
        m.holistic_claim_rejections += s.holistic_claim_rejections;
        m.deletions += s.deletions;
        m.scrapes += s.scrapes;
        m.cross_bb_moves += s.cross_bb_moves;
        m.resizes += s.resizes;
        m.resize_failures += s.resize_failures;
        m.migration_seconds += s.migration_seconds;
        if (s.max_migration_downtime_ms > m.max_migration_downtime_ms) {
            m.max_migration_downtime_ms = s.max_migration_downtime_ms;
        }
        m.speculative_placements += s.speculative_placements;
        m.speculation_misses += s.speculation_misses;
        m.initial_placement_wall_ms += s.initial_placement_wall_ms;
        m.window_batches += s.window_batches;
        m.window_speculations += s.window_speculations;
        m.window_speculative_placements += s.window_speculative_placements;
        m.window_speculation_misses += s.window_speculation_misses;
        m.window_speculation_invalidated += s.window_speculation_invalidated;
        m.churn_placement_wall_ms += s.churn_placement_wall_ms;
        m.recovery_batches += s.recovery_batches;
        m.recovery_speculations += s.recovery_speculations;
        m.recovery_speculative_placements += s.recovery_speculative_placements;
        m.recovery_speculation_misses += s.recovery_speculation_misses;
        m.recovery_speculation_invalidated +=
            s.recovery_speculation_invalidated;
        m.recovery_speculation_cancelled += s.recovery_speculation_cancelled;
        m.recovery_placement_wall_ms += s.recovery_placement_wall_ms;
        m.rebalance_target_speculations += s.rebalance_target_speculations;
        m.rebalance_targets_used += s.rebalance_targets_used;
        m.rebalance_target_invalidated += s.rebalance_target_invalidated;
        m.az_outages += s.az_outages;
        m.host_crashes += s.host_crashes;
        m.crash_victims += s.crash_victims;
        m.ha_restarts += s.ha_restarts;
        m.ha_restart_failures += s.ha_restart_failures;
        m.migration_aborts += s.migration_aborts;
        m.maintenance_evacuations += s.maintenance_evacuations;
        m.wasted_migration_seconds += s.wasted_migration_seconds;
    }
    return m;
}

namespace {

/// manifest.csv row with the description column read_manifest drops (the
/// combined manifest must reproduce it verbatim).
struct manifest_row {
    std::string metric, subsystem, resource, unit, description;
    std::size_t series_count = 0;
};

std::vector<manifest_row> read_manifest_rows(const std::filesystem::path& dir) {
    std::ifstream f(dir / "manifest.csv");
    if (!f.good()) {
        throw not_found_error("merge_region_exports: missing " +
                              (dir / "manifest.csv").string());
    }
    csv_reader reader(f);
    std::vector<std::string> fields;
    expects(reader.next_row(fields) && fields.size() >= 6,
            "merge_region_exports: malformed manifest header");
    std::vector<manifest_row> out;
    while (reader.next_row(fields)) {
        expects(fields.size() >= 6, "merge_region_exports: malformed row");
        out.push_back(manifest_row{fields[0], fields[1], fields[2], fields[3],
                                   fields[4], std::stoull(fields[5])});
    }
    return out;
}

/// Fleet-wide aggregate of one (metric, day): counts add, means merge
/// count-weighted, extremes take min/max.  Regions merge in region order,
/// so the floating-point accumulation is deterministic.
struct fleet_day {
    std::uint64_t count = 0;
    double weighted_sum = 0.0;
    double min = 0.0;
    double max = 0.0;
};

}  // namespace

dataset_export_report merge_region_exports(
    const std::filesystem::path& dir,
    const std::vector<std::string>& region_names) {
    expects(!region_names.empty(), "merge_region_exports: no regions");

    // Combined manifest: metric order of the first region (every region
    // shares the standard catalog), series counts summed across regions.
    std::vector<manifest_row> combined;
    for (const std::string& name : region_names) {
        for (const manifest_row& row : read_manifest_rows(dir / name)) {
            auto it = std::find_if(
                combined.begin(), combined.end(),
                [&](const manifest_row& c) { return c.metric == row.metric; });
            if (it == combined.end()) {
                combined.push_back(row);
            } else {
                it->series_count += row.series_count;
            }
        }
    }

    std::ofstream manifest_file(dir / "manifest.csv");
    expects(manifest_file.good(),
            "merge_region_exports: cannot create manifest.csv");
    csv_writer manifest(manifest_file);
    manifest.write_row({"metric", "subsystem", "resource", "unit",
                        "description", "series_count"});
    for (const manifest_row& row : combined) {
        manifest.write_row({row.metric, row.subsystem, row.resource, row.unit,
                            row.description, std::to_string(row.series_count)});
    }

    // Fleet-wide daily aggregates: every region's per-series day rows of a
    // metric collapse into one fleet row per (metric, day).
    dataset_export_report report;
    std::ofstream daily_file(dir / "fleet_daily.csv");
    expects(daily_file.good(),
            "merge_region_exports: cannot create fleet_daily.csv");
    csv_writer daily(daily_file);
    daily.write_row({"metric", "day", "count", "mean", "min", "max"});
    for (const manifest_row& metric : combined) {
        if (metric.series_count == 0) continue;
        ++report.metrics_exported;
        report.series_exported += metric.series_count;
        std::map<int, fleet_day> days;
        for (const std::string& name : region_names) {
            std::ifstream f(dir / name / (metric.metric + ".daily.csv"));
            if (!f.good()) continue;  // metric had no series in this region
            csv_reader reader(f);
            std::vector<std::string> fields;
            expects(reader.next_row(fields) && fields.size() >= 5,
                    "merge_region_exports: malformed daily header");
            while (reader.next_row(fields)) {
                expects(fields.size() >= 5,
                        "merge_region_exports: malformed daily row");
                const std::size_t base = fields.size() - 5;
                const int day = std::stoi(fields[base]);
                const std::uint64_t count = std::stoull(fields[base + 1]);
                const double mean = std::stod(fields[base + 2]);
                const double lo = std::stod(fields[base + 3]);
                const double hi = std::stod(fields[base + 4]);
                fleet_day& fd = days[day];
                if (fd.count == 0) {
                    fd.min = lo;
                    fd.max = hi;
                } else {
                    if (lo < fd.min) fd.min = lo;
                    if (hi > fd.max) fd.max = hi;
                }
                fd.count += count;
                fd.weighted_sum += static_cast<double>(count) * mean;
            }
        }
        for (const auto& [day, fd] : days) {
            const double mean =
                fd.count == 0
                    ? 0.0
                    : fd.weighted_sum / static_cast<double>(fd.count);
            daily.write_row({metric.metric, std::to_string(day),
                             std::to_string(fd.count), std::to_string(mean),
                             std::to_string(fd.min), std::to_string(fd.max)});
            ++report.daily_rows;
        }
    }
    return report;
}

region_set::region_set(std::vector<region_spec> specs,
                       std::optional<unsigned> threads)
    : specs_(std::move(specs)),
      pool_(threads.value_or(thread_pool::env_threads())) {
    expects(!specs_.empty(), "region_set: need at least one region");

    // RNG-stream derivation audit: two regions on one derived master seed
    // would replay each other's streams — "independent regions" silently
    // becomes the same region twice.
    std::set<std::uint64_t> seeds;
    for (const region_spec& spec : specs_) {
        expects(seeds.insert(spec.config.scenario.seed).second,
                "region_set: two regions share a derived master seed");
    }

    engines_.reserve(specs_.size());
    for (const region_spec& spec : specs_) {
        engines_.push_back(std::make_unique<sim_engine>(spec.config));
        engines_.back()->set_shared_pool(&pool_);
    }
}

region_set::region_set(std::vector<region_spec> specs,
                       const engine_builder& build,
                       std::optional<unsigned> threads)
    : specs_(std::move(specs)),
      pool_(threads.value_or(thread_pool::env_threads())) {
    expects(!specs_.empty(), "region_set: need at least one region");
    expects(static_cast<bool>(build), "region_set: null engine builder");

    std::set<std::uint64_t> seeds;
    for (const region_spec& spec : specs_) {
        expects(seeds.insert(spec.config.scenario.seed).second,
                "region_set: two regions share a derived master seed");
    }

    engines_.reserve(specs_.size());
    for (std::size_t r = 0; r < specs_.size(); ++r) {
        engines_.push_back(build(r, pool_));
        expects(engines_.back() != nullptr && engines_.back()->is_setup(),
                "region_set: engine builder must return a set-up engine");
    }
    // adopted engines carry their own timelines — setup() must not run
    setup_done_ = true;
}

void region_set::setup() {
    if (setup_done_) return;
    setup_done_ = true;
    pool_.run_tasks(engines_.size(),
                    [this](std::size_t r) { engines_[r]->setup(); });
}

void region_set::run() {
    setup();
    pool_.run_tasks(engines_.size(),
                    [this](std::size_t r) { engines_[r]->run(); });
}

void region_set::run_until(sim_time until) {
    setup();
    pool_.run_tasks(engines_.size(),
                    [this, until](std::size_t r) { engines_[r]->run_until(until); });
}

run_stats region_set::merged_stats() const {
    std::vector<run_stats> per_region;
    per_region.reserve(engines_.size());
    for (const auto& engine : engines_) per_region.push_back(engine->stats());
    return merge_run_stats(per_region);
}

std::vector<std::string> region_set::region_names() const {
    std::vector<std::string> names;
    names.reserve(specs_.size());
    for (const region_spec& spec : specs_) names.push_back(spec.name);
    return names;
}

void region_set::enable_streaming_export(const std::filesystem::path& dir) {
    expects(writers_.empty(),
            "region_set::enable_streaming_export: already enabled");
    streaming_dir_ = dir;
    std::filesystem::create_directories(dir);
    writers_.reserve(engines_.size());
    for (std::size_t r = 0; r < engines_.size(); ++r) {
        writers_.push_back(std::make_unique<streaming_dataset_writer>(
            engines_[r]->store(), dir / specs_[r].name));
        engines_[r]->enable_raw_streaming(writers_[r]->sink());
    }
}

region_export_report region_set::finish_streaming_export() {
    expects(!writers_.empty(),
            "region_set::finish_streaming_export: streaming not enabled");
    region_export_report report;
    report.per_region.resize(writers_.size());
    pool_.run_tasks(writers_.size(), [this, &report](std::size_t r) {
        report.per_region[r] = writers_[r]->finish();
    });
    writers_.clear();
    for (const dataset_export_report& r : report.per_region) {
        report.combined.metrics_exported += r.metrics_exported;
        report.combined.series_exported += r.series_exported;
        report.combined.daily_rows += r.daily_rows;
        report.combined.raw_rows += r.raw_rows;
    }
    merge_region_exports(streaming_dir_, region_names());
    return report;
}

region_export_report region_set::export_datasets(
    const std::filesystem::path& dir, const dataset_export_options& options) {
    std::filesystem::create_directories(dir);
    region_export_report report;
    report.per_region.resize(engines_.size());
    pool_.run_tasks(engines_.size(), [&, this](std::size_t r) {
        report.per_region[r] = export_dataset(engines_[r]->store(),
                                              dir / specs_[r].name, options);
    });
    for (const dataset_export_report& r : report.per_region) {
        report.combined.metrics_exported += r.metrics_exported;
        report.combined.series_exported += r.series_exported;
        report.combined.daily_rows += r.daily_rows;
        report.combined.raw_rows += r.raw_rows;
    }
    merge_region_exports(dir, region_names());
    return report;
}

}  // namespace sci
