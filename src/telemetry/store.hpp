#pragma once

// Time-series store.
//
// Mirrors the production pipeline of Section 4 (Prometheus ingest + Thanos
// long-term downsampling): samples are appended at scrape cadence
// (30–300 s) and compacted *streamingly* into per-hour and per-day
// aggregates.  Analyses read the compacted aggregates; raw samples are
// retained only when the store is configured for it (tests, small runs).
//
// Scale machinery (the full region is 1,800 nodes / 48,000 VMs / 30 days):
//
//   * Sharded appends.  A scrape's samples arrive as ONE batch; the batch
//     is partitioned by series hash into `append_shard_count` fixed shards
//     so workers can apply appends in parallel — a series maps to exactly
//     one shard, shard counters are per-shard (merged on read), and each
//     series sees at most one sample per batch, so per-series order (and
//     with it every running_stats float sum) is identical to the serial
//     funnel it replaces at any worker count.
//
//   * Sparse aggregates.  A series allocates day/hour slots only for the
//     span it actually lived (offset + grow), not the full window — a
//     2-hour VM costs one day slot, not thirty.
//
//   * Raw-block sealing.  When raw samples are kept, days at or below the
//     seal point are handed to a sink (the streaming dataset writer) and
//     their blocks are freed, keeping raw residency O(compaction horizon)
//     instead of O(window).

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "infra/ids.hpp"
#include "simcore/stats.hpp"
#include "simcore/thread_pool.hpp"
#include "simcore/time.hpp"
#include "telemetry/labels.hpp"
#include "telemetry/metric.hpp"

namespace sci {

struct series_tag {};
using series_id = strong_id<series_tag>;

/// One raw scrape sample.
struct sample {
    sim_time t;
    double value;
};

struct store_config {
    /// Compaction horizon in days (rows of the Section 5 heatmaps).
    int days = observation_days;
    /// Retain raw samples per series (memory-heavy; tests & small runs).
    bool keep_raw = false;
};

/// Labelled multi-series store with streaming hour/day compaction.
class metric_store {
public:
    explicit metric_store(metric_registry registry, store_config config = {});

    const metric_registry& registry() const { return registry_; }
    const store_config& config() const { return config_; }

    /// Get-or-create the series for (metric, labels).
    series_id open_series(std::string_view metric, label_set labels);

    /// Find an existing series; nullopt if never opened.
    std::optional<series_id> find_series(std::string_view metric,
                                         const label_set& labels) const;

    /// Append one sample.  Samples outside [0, days*86400) are counted as
    /// dropped (they fall outside the observation window) but do not throw.
    void append(series_id id, sim_time t, double value);

    // --- sharded batch append --------------------------------------------
    /// One sample of a batch append.
    struct sample_event {
        series_id id;
        double value;
    };
    /// Runs shard work: run(shard_count, fn) must invoke fn over every
    /// index in [0, shard_count), possibly concurrently (the engine's
    /// run_sharded, or apply_shards_inline for serial callers).
    using sharded_runner =
        std::function<void(std::size_t, const thread_pool::range_fn&)>;
    /// Append one scrape's samples, partitioned by series shard so `run`
    /// may apply shards in parallel.  PRECONDITION: a series appears at
    /// most once per batch (one scrape emits one sample per series), so
    /// per-series append order — and every aggregate float sum — is
    /// byte-identical to appending the batch serially in order.
    void append_batch(sim_time t, std::span<const sample_event> batch,
                      const sharded_runner& run);
    /// Serial fallback runner (applies shards inline, in order).
    static void apply_shards_inline(std::size_t count,
                                    const thread_pool::range_fn& fn);
    /// Number of fixed append shards (series -> shard is a pure hash).
    static constexpr unsigned append_shard_count = 16;
    /// Shard owning a series (exposed for tests).
    static unsigned shard_of(series_id id) {
        const auto h =
            static_cast<std::uint64_t>(id.value()) * 0x9E3779B97F4A7C15ull;
        return static_cast<unsigned>(h >> 60);
    }

    /// Merge a pre-computed day aggregate into a series (Thanos-style
    /// block ingestion; used when importing an exported dataset).
    void merge_daily(series_id id, int day, const running_stats& aggregate);

    std::size_t series_count() const { return series_.size(); }
    std::uint64_t dropped_samples() const;
    std::uint64_t total_samples() const;

    // --- raw-block sealing -----------------------------------------------
    /// Sink receiving a sealed day's raw samples of one series; after it
    /// returns, the block is freed.  Called in ascending (series, day)
    /// order.
    using raw_sink =
        std::function<void(series_id, int day, std::span<const sample>)>;
    /// Seal every raw day <= `day`: blocks are streamed to `sink` (when
    /// set) and dropped from memory.  Later appends into sealed days are
    /// counted as dropped.  No-op unless keep_raw.
    void seal_raw_through(int day, const raw_sink& sink = {});
    /// Highest sealed day (-1 when nothing was sealed yet).
    int raw_sealed_through() const { return raw_sealed_through_; }
    /// Raw samples currently resident across all series (the streaming
    /// export's bounded-memory invariant; tests assert it shrinks).
    std::size_t raw_resident_samples() const;

    /// Metric definition of a series.
    const metric_def& metric_of(series_id id) const;

    /// Label set of a series.
    const label_set& labels_of(series_id id) const;

    /// All series of a metric, optionally filtered by required label
    /// equalities.
    std::vector<series_id> select(
        std::string_view metric,
        std::span<const std::pair<std::string, std::string>> label_eq = {}) const;

    /// Day aggregate (nullptr when no sample fell into that day — the
    /// "white cells" of the paper's heatmaps).
    const running_stats* daily(series_id id, int day) const;

    /// Hour aggregate for metrics flagged hourly in the registry.
    const running_stats* hourly(series_id id, int hour) const;

    /// Whole-window aggregate of a series (merged over days).
    running_stats window_aggregate(series_id id) const;

    /// Raw samples still resident (empty unless keep_raw; sealed days are
    /// gone — stream them through the seal sink instead).
    std::span<const sample> raw(series_id id) const;

    // --- snapshot support -------------------------------------------------
    /// Read-only view of one series' complete mutable state (metric name
    /// and labels come from metric_of / labels_of).
    struct series_view {
        std::int32_t daily_first;
        std::int32_t hourly_first;
        std::span<const running_stats> daily;
        std::span<const running_stats> hourly;
        std::span<const sample> raw;
    };
    series_view view_of(series_id id) const;

    /// Re-create a series verbatim (sparse aggregates + unsealed raw
    /// block).  Ids are assigned in call order, so restoring rows in
    /// ascending id order reproduces the original assignment exactly —
    /// later open_series calls then resolve to the restored ids.
    series_id restore_series(std::string_view metric, label_set labels,
                             std::int32_t daily_first,
                             std::vector<running_stats> daily,
                             std::int32_t hourly_first,
                             std::vector<running_stats> hourly,
                             std::vector<sample> raw);

    /// Per-shard ingest counters {appended, dropped}.
    std::pair<std::uint64_t, std::uint64_t> shard_counter(unsigned shard) const;
    void restore_shard_counter(unsigned shard, std::uint64_t appended,
                               std::uint64_t dropped);
    void restore_raw_sealed_through(int day) { raw_sealed_through_ = day; }

private:
    struct series_data {
        std::size_t metric_index;
        bool hourly_metric = false;  ///< hoisted registry flag
        label_set labels;
        // sparse aggregates: slot 0 covers daily_first / hourly_first
        std::int32_t daily_first = -1;
        std::int32_t hourly_first = -1;
        std::vector<running_stats> daily;
        std::vector<running_stats> hourly;
        std::vector<sample> raw;  ///< unsealed samples, time-ascending
    };

    /// Per-shard ingest counters, cache-line separated so parallel shard
    /// workers never share a line; totals merge on read.
    struct alignas(64) shard_counters {
        std::uint64_t appended = 0;
        std::uint64_t dropped = 0;
    };

    void apply_append(series_data& s, sim_time t, double value,
                      shard_counters& counters);
    const series_data& series_at(series_id id) const;
    running_stats& daily_slot(series_data& s, int day);

    metric_registry registry_;
    store_config config_;
    std::vector<series_data> series_;
    // per metric-index: labels -> series
    std::vector<std::unordered_map<label_set, series_id>> index_;
    std::array<shard_counters, append_shard_count> counters_{};
    /// Batch partition scratch: per shard, indices into the batch.
    std::array<std::vector<std::uint32_t>, append_shard_count> batch_shards_;
    int raw_sealed_through_ = -1;
};

}  // namespace sci
