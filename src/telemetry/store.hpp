#pragma once

// Time-series store.
//
// Mirrors the production pipeline of Section 4 (Prometheus ingest + Thanos
// long-term downsampling): samples are appended at scrape cadence
// (30–300 s) and compacted *streamingly* into per-hour and per-day
// aggregates.  Analyses read the compacted aggregates; raw samples are
// retained only when the store is configured for it (tests, small runs).
//
// This keeps a full-scale region (1,800 nodes, 48,000 VMs, 30 days) within
// a laptop's memory: a day-aggregate is one running_stats per series-day.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "infra/ids.hpp"
#include "simcore/stats.hpp"
#include "simcore/time.hpp"
#include "telemetry/labels.hpp"
#include "telemetry/metric.hpp"

namespace sci {

struct series_tag {};
using series_id = strong_id<series_tag>;

/// One raw scrape sample.
struct sample {
    sim_time t;
    double value;
};

struct store_config {
    /// Compaction horizon in days (rows of the Section 5 heatmaps).
    int days = observation_days;
    /// Retain raw samples per series (memory-heavy; tests & small runs).
    bool keep_raw = false;
};

/// Labelled multi-series store with streaming hour/day compaction.
class metric_store {
public:
    explicit metric_store(metric_registry registry, store_config config = {});

    const metric_registry& registry() const { return registry_; }
    const store_config& config() const { return config_; }

    /// Get-or-create the series for (metric, labels).
    series_id open_series(std::string_view metric, label_set labels);

    /// Find an existing series; nullopt if never opened.
    std::optional<series_id> find_series(std::string_view metric,
                                         const label_set& labels) const;

    /// Append one sample.  Samples outside [0, days*86400) are counted as
    /// dropped (they fall outside the observation window) but do not throw.
    void append(series_id id, sim_time t, double value);

    /// Merge a pre-computed day aggregate into a series (Thanos-style
    /// block ingestion; used when importing an exported dataset).
    void merge_daily(series_id id, int day, const running_stats& aggregate);

    std::size_t series_count() const { return series_.size(); }
    std::uint64_t dropped_samples() const { return dropped_; }
    std::uint64_t total_samples() const { return appended_; }

    /// Metric definition of a series.
    const metric_def& metric_of(series_id id) const;

    /// Label set of a series.
    const label_set& labels_of(series_id id) const;

    /// All series of a metric, optionally filtered by required label
    /// equalities.
    std::vector<series_id> select(
        std::string_view metric,
        std::span<const std::pair<std::string, std::string>> label_eq = {}) const;

    /// Day aggregate (nullptr when no sample fell into that day — the
    /// "white cells" of the paper's heatmaps).
    const running_stats* daily(series_id id, int day) const;

    /// Hour aggregate for metrics flagged hourly in the registry.
    const running_stats* hourly(series_id id, int hour) const;

    /// Whole-window aggregate of a series (merged over days).
    running_stats window_aggregate(series_id id) const;

    /// Raw samples (empty unless keep_raw).
    std::span<const sample> raw(series_id id) const;

private:
    struct series_data {
        std::size_t metric_index;
        label_set labels;
        std::vector<running_stats> daily;   // size == config.days
        std::vector<running_stats> hourly;  // size == days*24 if hourly metric
        std::vector<sample> raw;
    };

    const series_data& series_at(series_id id) const;

    metric_registry registry_;
    store_config config_;
    std::vector<series_data> series_;
    // per metric-index: labels -> series
    std::vector<std::unordered_map<label_set, series_id>> index_;
    std::uint64_t dropped_ = 0;
    std::uint64_t appended_ = 0;
};

}  // namespace sci
