#pragma once

// Prometheus-style label sets.  A series is identified by its metric name
// plus a label set, e.g.
//   vrops_hostsystem_cpu_contention_percentage{node="node-1a2b", bb="bb-3",
//                                              dc="dc-a", az="az-1"}
// Label sets are kept sorted by key so equality/hash are canonical.

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sci {

class label_set {
public:
    label_set() = default;
    label_set(std::initializer_list<std::pair<std::string, std::string>> kvs);

    /// Add or replace a label.
    void set(std::string key, std::string value);

    /// Value for a key, if present.
    std::optional<std::string_view> get(std::string_view key) const;

    bool contains(std::string_view key, std::string_view value) const;

    std::size_t size() const { return kvs_.size(); }
    bool empty() const { return kvs_.empty(); }

    const std::vector<std::pair<std::string, std::string>>& pairs() const {
        return kvs_;
    }

    /// Canonical rendering: {a="1",b="2"}.
    std::string to_string() const;

    std::uint64_t hash() const;

    friend bool operator==(const label_set&, const label_set&) = default;

private:
    std::vector<std::pair<std::string, std::string>> kvs_;  // sorted by key
};

}  // namespace sci

template <>
struct std::hash<sci::label_set> {
    std::size_t operator()(const sci::label_set& ls) const noexcept {
        return static_cast<std::size_t>(ls.hash());
    }
};
