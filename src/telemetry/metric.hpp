#pragma once

// Metric catalog (Table 4 of the paper).
//
// Metric names follow the production naming convention: the vROps exporter
// contributes the vrops_* metrics, the Nova MySQL exporter contributes the
// openstack_compute_* metrics (Section 4).  metric_registry pre-registers
// the full Table 4 catalog; tab4_metric_catalog dumps it.

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sci {

/// Which layer the metric is measured at.
enum class metric_subsystem { compute_host, vm, region };

/// The resource the metric describes.
enum class metric_resource { cpu, memory, network, storage, count };

/// Unit of the metric values.
enum class metric_unit {
    percentage,    ///< [0, 100]
    ratio,         ///< [0, 1]
    milliseconds,
    mib,
    gib,
    kbps,
    cores,
    instances,
};

std::string_view to_string(metric_subsystem s);
std::string_view to_string(metric_resource r);
std::string_view to_string(metric_unit u);

struct metric_def {
    std::string name;
    metric_subsystem subsystem;
    metric_resource resource;
    metric_unit unit;
    std::string description;
    /// Keep hourly compaction for this metric (needed by sub-daily plots
    /// such as the CPU ready time series of Figure 8).
    bool hourly = false;
};

/// Canonical metric names (exactly the Table 4 identifiers).
namespace metric_names {

// vROps exporter — compute host (ESXi node) level
inline constexpr std::string_view host_cpu_core_utilization =
    "vrops_hostsystem_cpu_core_utilization_percentage";
inline constexpr std::string_view host_cpu_contention =
    "vrops_hostsystem_cpu_contention_percentage";
inline constexpr std::string_view host_cpu_ready =
    "vrops_hostsystem_cpu_ready_milliseconds";
inline constexpr std::string_view host_memory_usage =
    "vrops_hostsystem_memory_usage_percentage";
inline constexpr std::string_view host_network_tx =
    "vrops_hostsystem_network_bytes_tx_kbps";
inline constexpr std::string_view host_network_rx =
    "vrops_hostsystem_network_bytes_rx_kbps";
inline constexpr std::string_view host_diskspace_usage =
    "vrops_hostsystem_diskspace_usage_gigabytes";

// vROps exporter — VM level
inline constexpr std::string_view vm_cpu_usage_ratio =
    "vrops_virtualmachine_cpu_usage_ratio";
inline constexpr std::string_view vm_memory_consumed_ratio =
    "vrops_virtualmachine_memory_consumed_ratio";

// Nova MySQL exporter — OpenStack compute (building-block) level
inline constexpr std::string_view os_nodes_vcpus =
    "openstack_compute_nodes_vcpus_gauge";
inline constexpr std::string_view os_nodes_vcpus_used =
    "openstack_compute_nodes_vcpus_used_gauge";
inline constexpr std::string_view os_nodes_memory_mb =
    "openstack_compute_nodes_memory_mb_gauge";
inline constexpr std::string_view os_nodes_memory_mb_used =
    "openstack_compute_nodes_memory_mb_used_gauge";
inline constexpr std::string_view os_instances_total =
    "openstack_compute_instances_total";

}  // namespace metric_names

/// Registry of metric definitions; usually constructed via
/// metric_registry::standard_catalog().
class metric_registry {
public:
    /// The full Table 4 catalog.
    static metric_registry standard_catalog();

    void add(metric_def def);
    const metric_def& get(std::string_view name) const;
    std::optional<std::size_t> find(std::string_view name) const;
    std::span<const metric_def> all() const { return defs_; }
    std::size_t size() const { return defs_.size(); }

private:
    std::vector<metric_def> defs_;
};

}  // namespace sci
