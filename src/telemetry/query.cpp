#include "telemetry/query.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "simcore/error.hpp"

namespace sci {

namespace {

constexpr double nan_value = std::numeric_limits<double>::quiet_NaN();

double read_stat(const running_stats& agg, bucket_stat s) {
    switch (s) {
        case bucket_stat::mean: return agg.mean();
        case bucket_stat::min: return agg.min();
        case bucket_stat::max: return agg.max();
        case bucket_stat::sum: return agg.sum();
        case bucket_stat::count: return static_cast<double>(agg.count());
    }
    return nan_value;
}

}  // namespace

double aggregate_values(std::span<const double> values, agg_op op, double q) {
    std::vector<double> present;
    present.reserve(values.size());
    for (double v : values) {
        if (!std::isnan(v)) present.push_back(v);
    }
    if (present.empty()) return nan_value;
    switch (op) {
        case agg_op::sum: {
            double total = 0.0;
            for (double v : present) total += v;
            return total;
        }
        case agg_op::avg: {
            double total = 0.0;
            for (double v : present) total += v;
            return total / static_cast<double>(present.size());
        }
        case agg_op::min:
            return *std::min_element(present.begin(), present.end());
        case agg_op::max:
            return *std::max_element(present.begin(), present.end());
        case agg_op::count:
            return static_cast<double>(present.size());
        case agg_op::quantile:
            expects(q > 0.0 && q < 1.0, "aggregate_values: quantile in (0,1)");
            return exact_quantile(present, q);
    }
    return nan_value;
}

query_series query_matrix::aggregate(agg_op op, double q) const {
    query_series out;
    out.values.assign(steps(), nan_value);
    std::vector<double> column(series.size());
    for (std::size_t t = 0; t < steps(); ++t) {
        for (std::size_t s = 0; s < series.size(); ++s) {
            column[s] = series[s].values[t];
        }
        out.values[t] = aggregate_values(column, op, q);
    }
    return out;
}

query_matrix query_matrix::aggregate_by(std::string_view label, agg_op op,
                                        double q) const {
    std::map<std::string, std::vector<const query_series*>> groups;
    for (const query_series& s : series) {
        const auto value = s.labels.get(label);
        if (!value.has_value()) continue;
        groups[std::string(*value)].push_back(&s);
    }
    query_matrix out;
    out.step = step;
    for (const auto& [value, members] : groups) {
        query_series grouped;
        grouped.labels.set(std::string(label), value);
        grouped.values.assign(steps(), nan_value);
        std::vector<double> column(members.size());
        for (std::size_t t = 0; t < steps(); ++t) {
            for (std::size_t m = 0; m < members.size(); ++m) {
                column[m] = members[m]->values[t];
            }
            grouped.values[t] = aggregate_values(column, op, q);
        }
        out.series.push_back(std::move(grouped));
    }
    return out;
}

query_matrix query_matrix::map(const std::function<double(double)>& fn) const {
    expects(static_cast<bool>(fn), "query_matrix::map: null function");
    query_matrix out;
    out.step = step;
    out.series.reserve(series.size());
    for (const query_series& s : series) {
        query_series mapped;
        mapped.labels = s.labels;
        mapped.values.reserve(s.values.size());
        for (double v : s.values) {
            mapped.values.push_back(std::isnan(v) ? v : fn(v));
        }
        out.series.push_back(std::move(mapped));
    }
    return out;
}

query_matrix query_matrix::filter(
    const std::function<bool(const label_set&)>& predicate) const {
    expects(static_cast<bool>(predicate), "query_matrix::filter: null predicate");
    query_matrix out;
    out.step = step;
    for (const query_series& s : series) {
        if (predicate(s.labels)) out.series.push_back(s);
    }
    return out;
}

std::vector<std::pair<label_set, double>> query_matrix::reduce_time(
    agg_op op, double q) const {
    std::vector<std::pair<label_set, double>> out;
    out.reserve(series.size());
    for (const query_series& s : series) {
        out.emplace_back(s.labels, aggregate_values(s.values, op, q));
    }
    return out;
}

query_matrix query_matrix::top_k(std::size_t k, agg_op op) const {
    std::vector<std::pair<double, const query_series*>> ranked;
    ranked.reserve(series.size());
    for (const query_series& s : series) {
        const double score = aggregate_values(s.values, op, 0.5);
        ranked.emplace_back(std::isnan(score)
                                ? -std::numeric_limits<double>::infinity()
                                : score,
                            &s);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) { return a.first > b.first; });
    query_matrix out;
    out.step = step;
    for (std::size_t i = 0; i < ranked.size() && i < k; ++i) {
        out.series.push_back(*ranked[i].second);
    }
    return out;
}

query& query::metric(std::string_view name) {
    metric_ = std::string(name);
    return *this;
}

query& query::where(std::string key, std::string value) {
    label_eq_.emplace_back(std::move(key), std::move(value));
    return *this;
}

query_matrix query::run() const {
    expects(!metric_.empty(), "query::run: no metric selected");
    query_matrix out;
    const int days = store_->config().days;
    out.step = hourly_ ? seconds_per_hour : seconds_per_day;
    const std::size_t steps =
        hourly_ ? static_cast<std::size_t>(days) * 24
                : static_cast<std::size_t>(days);
    for (series_id id : store_->select(metric_, label_eq_)) {
        query_series s;
        s.labels = store_->labels_of(id);
        s.values.assign(steps, nan_value);
        for (std::size_t t = 0; t < steps; ++t) {
            const running_stats* agg =
                hourly_ ? store_->hourly(id, static_cast<int>(t))
                        : store_->daily(id, static_cast<int>(t));
            if (agg != nullptr) s.values[t] = read_stat(*agg, stat_);
        }
        out.series.push_back(std::move(s));
    }
    return out;
}

query_matrix query::daily_mean() const {
    query copy = *this;
    copy.hourly_ = false;
    copy.stat_ = bucket_stat::mean;
    return copy.run();
}

std::vector<std::pair<label_set, double>> query::window(bucket_stat s) const {
    expects(!metric_.empty(), "query::window: no metric selected");
    std::vector<std::pair<label_set, double>> out;
    for (series_id id : store_->select(metric_, label_eq_)) {
        const running_stats agg = store_->window_aggregate(id);
        out.emplace_back(store_->labels_of(id),
                         agg.empty() ? std::numeric_limits<double>::quiet_NaN()
                                     : read_stat(agg, s));
    }
    return out;
}

}  // namespace sci
