#include "telemetry/metric.hpp"

#include <algorithm>

#include "simcore/error.hpp"

namespace sci {

std::string_view to_string(metric_subsystem s) {
    switch (s) {
        case metric_subsystem::compute_host: return "Compute host";
        case metric_subsystem::vm: return "VM";
        case metric_subsystem::region: return "Region";
    }
    return "unknown";
}

std::string_view to_string(metric_resource r) {
    switch (r) {
        case metric_resource::cpu: return "CPU";
        case metric_resource::memory: return "Memory";
        case metric_resource::network: return "Network";
        case metric_resource::storage: return "Storage";
        case metric_resource::count: return "Count";
    }
    return "unknown";
}

std::string_view to_string(metric_unit u) {
    switch (u) {
        case metric_unit::percentage: return "percent";
        case metric_unit::ratio: return "ratio";
        case metric_unit::milliseconds: return "ms";
        case metric_unit::mib: return "MiB";
        case metric_unit::gib: return "GiB";
        case metric_unit::kbps: return "kbps";
        case metric_unit::cores: return "cores";
        case metric_unit::instances: return "instances";
    }
    return "unknown";
}

metric_registry metric_registry::standard_catalog() {
    using namespace metric_names;
    metric_registry reg;
    reg.add({std::string(host_cpu_core_utilization), metric_subsystem::compute_host,
             metric_resource::cpu, metric_unit::percentage,
             "Utilization of CPU per compute host"});
    reg.add({std::string(host_cpu_contention), metric_subsystem::compute_host,
             metric_resource::cpu, metric_unit::percentage,
             "Observed CPU contention per compute host"});
    reg.add({std::string(host_cpu_ready), metric_subsystem::compute_host,
             metric_resource::cpu, metric_unit::milliseconds,
             "Duration a VM is ready but waits for scheduling",
             /*hourly=*/true});
    reg.add({std::string(host_memory_usage), metric_subsystem::compute_host,
             metric_resource::memory, metric_unit::percentage,
             "Utilization of compute host memory"});
    reg.add({std::string(host_network_tx), metric_subsystem::compute_host,
             metric_resource::network, metric_unit::kbps,
             "Transmitted network traffic"});
    reg.add({std::string(host_network_rx), metric_subsystem::compute_host,
             metric_resource::network, metric_unit::kbps,
             "Received network traffic"});
    reg.add({std::string(host_diskspace_usage), metric_subsystem::compute_host,
             metric_resource::storage, metric_unit::gib,
             "Utilization of local storage"});
    reg.add({std::string(vm_cpu_usage_ratio), metric_subsystem::vm,
             metric_resource::cpu, metric_unit::ratio,
             "Percentage of requested and used CPU"});
    reg.add({std::string(vm_memory_consumed_ratio), metric_subsystem::vm,
             metric_resource::memory, metric_unit::ratio,
             "Percentage of requested and used memory"});
    reg.add({std::string(os_nodes_vcpus), metric_subsystem::compute_host,
             metric_resource::cpu, metric_unit::cores,
             "Number of vCPUs per compute host"});
    reg.add({std::string(os_nodes_vcpus_used), metric_subsystem::compute_host,
             metric_resource::cpu, metric_unit::cores,
             "Number of used vCPUs per compute host"});
    reg.add({std::string(os_nodes_memory_mb), metric_subsystem::compute_host,
             metric_resource::memory, metric_unit::mib,
             "Amount of memory in MB per compute host"});
    reg.add({std::string(os_nodes_memory_mb_used), metric_subsystem::compute_host,
             metric_resource::memory, metric_unit::mib,
             "Amount of utilized memory in MB per compute host"});
    reg.add({std::string(os_instances_total), metric_subsystem::region,
             metric_resource::count, metric_unit::instances,
             "Total number of VMs within the regional deployment"});
    return reg;
}

void metric_registry::add(metric_def def) {
    expects(!def.name.empty(), "metric_registry::add: empty metric name");
    expects(!find(def.name).has_value(), "metric_registry::add: duplicate metric");
    defs_.push_back(std::move(def));
}

const metric_def& metric_registry::get(std::string_view name) const {
    const auto idx = find(name);
    if (!idx.has_value()) {
        throw not_found_error("metric_registry::get: unknown metric '" +
                              std::string(name) + "'");
    }
    return defs_[*idx];
}

std::optional<std::size_t> metric_registry::find(std::string_view name) const {
    const auto it = std::find_if(defs_.begin(), defs_.end(),
                                 [&](const metric_def& d) { return d.name == name; });
    if (it == defs_.end()) return std::nullopt;
    return static_cast<std::size_t>(it - defs_.begin());
}

}  // namespace sci
