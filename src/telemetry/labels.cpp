#include "telemetry/labels.hpp"

#include <algorithm>

#include "simcore/rng.hpp"  // fnv1a / splitmix64

namespace sci {

label_set::label_set(
    std::initializer_list<std::pair<std::string, std::string>> kvs) {
    for (const auto& [k, v] : kvs) set(k, v);
}

void label_set::set(std::string key, std::string value) {
    const auto it = std::lower_bound(
        kvs_.begin(), kvs_.end(), key,
        [](const auto& kv, const std::string& k) { return kv.first < k; });
    if (it != kvs_.end() && it->first == key) {
        it->second = std::move(value);
    } else {
        kvs_.insert(it, {std::move(key), std::move(value)});
    }
}

std::optional<std::string_view> label_set::get(std::string_view key) const {
    const auto it = std::lower_bound(
        kvs_.begin(), kvs_.end(), key,
        [](const auto& kv, std::string_view k) { return kv.first < k; });
    if (it != kvs_.end() && it->first == key) return std::string_view(it->second);
    return std::nullopt;
}

bool label_set::contains(std::string_view key, std::string_view value) const {
    const auto v = get(key);
    return v.has_value() && *v == value;
}

std::string label_set::to_string() const {
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : kvs_) {
        if (!first) out += ",";
        first = false;
        out += k;
        out += "=\"";
        out += v;
        out += "\"";
    }
    out += "}";
    return out;
}

std::uint64_t label_set::hash() const {
    std::uint64_t h = 0x2545f4914f6cdd1dULL;
    for (const auto& [k, v] : kvs_) {
        h = splitmix64(h ^ fnv1a(k));
        h = splitmix64(h ^ fnv1a(v));
    }
    return h;
}

}  // namespace sci
