#include "telemetry/store.hpp"

#include <algorithm>

#include "simcore/error.hpp"

namespace sci {

metric_store::metric_store(metric_registry registry, store_config config)
    : registry_(std::move(registry)), config_(config) {
    expects(config_.days > 0, "metric_store: days must be positive");
    index_.resize(registry_.size());
}

series_id metric_store::open_series(std::string_view metric, label_set labels) {
    const auto metric_index = registry_.find(metric);
    if (!metric_index.has_value()) {
        throw not_found_error("metric_store::open_series: unknown metric '" +
                              std::string(metric) + "'");
    }
    auto& by_labels = index_[*metric_index];
    const auto it = by_labels.find(labels);
    if (it != by_labels.end()) return it->second;

    const series_id id(static_cast<std::int32_t>(series_.size()));
    series_data data;
    data.metric_index = *metric_index;
    data.labels = labels;
    data.daily.resize(static_cast<std::size_t>(config_.days));
    if (registry_.all()[*metric_index].hourly) {
        data.hourly.resize(static_cast<std::size_t>(config_.days) * 24);
    }
    series_.push_back(std::move(data));
    by_labels.emplace(std::move(labels), id);
    return id;
}

std::optional<series_id> metric_store::find_series(std::string_view metric,
                                                   const label_set& labels) const {
    const auto metric_index = registry_.find(metric);
    if (!metric_index.has_value()) return std::nullopt;
    const auto& by_labels = index_[*metric_index];
    const auto it = by_labels.find(labels);
    if (it == by_labels.end()) return std::nullopt;
    return it->second;
}

void metric_store::append(series_id id, sim_time t, double value) {
    expects(id.valid() && static_cast<std::size_t>(id.value()) < series_.size(),
            "metric_store::append: unknown series");
    series_data& s = series_[static_cast<std::size_t>(id.value())];
    ++appended_;
    const std::int64_t day = day_index(t);
    if (day < 0 || day >= config_.days) {
        ++dropped_;
        return;
    }
    s.daily[static_cast<std::size_t>(day)].add(value);
    if (!s.hourly.empty()) {
        const std::int64_t hour = t / seconds_per_hour;
        s.hourly[static_cast<std::size_t>(hour)].add(value);
    }
    if (config_.keep_raw) {
        s.raw.push_back(sample{t, value});
    }
}

void metric_store::merge_daily(series_id id, int day,
                               const running_stats& aggregate) {
    expects(id.valid() && static_cast<std::size_t>(id.value()) < series_.size(),
            "metric_store::merge_daily: unknown series");
    expects(day >= 0 && day < config_.days,
            "metric_store::merge_daily: day out of range");
    series_[static_cast<std::size_t>(id.value())]
        .daily[static_cast<std::size_t>(day)]
        .merge(aggregate);
    appended_ += aggregate.count();
}

const metric_store::series_data& metric_store::series_at(series_id id) const {
    expects(id.valid() && static_cast<std::size_t>(id.value()) < series_.size(),
            "metric_store: unknown series");
    return series_[static_cast<std::size_t>(id.value())];
}

const metric_def& metric_store::metric_of(series_id id) const {
    return registry_.all()[series_at(id).metric_index];
}

const label_set& metric_store::labels_of(series_id id) const {
    return series_at(id).labels;
}

std::vector<series_id> metric_store::select(
    std::string_view metric,
    std::span<const std::pair<std::string, std::string>> label_eq) const {
    std::vector<series_id> out;
    const auto metric_index = registry_.find(metric);
    if (!metric_index.has_value()) return out;
    for (const auto& [labels, id] : index_[*metric_index]) {
        const bool match = std::all_of(
            label_eq.begin(), label_eq.end(), [&](const auto& kv) {
                return labels.contains(kv.first, kv.second);
            });
        if (match) out.push_back(id);
    }
    // deterministic order regardless of hash-map iteration
    std::sort(out.begin(), out.end());
    return out;
}

const running_stats* metric_store::daily(series_id id, int day) const {
    const series_data& s = series_at(id);
    expects(day >= 0 && day < config_.days, "metric_store::daily: day out of range");
    const running_stats& agg = s.daily[static_cast<std::size_t>(day)];
    return agg.empty() ? nullptr : &agg;
}

const running_stats* metric_store::hourly(series_id id, int hour) const {
    const series_data& s = series_at(id);
    expects(!s.hourly.empty(),
            "metric_store::hourly: metric not configured for hourly compaction");
    expects(hour >= 0 && hour < config_.days * 24,
            "metric_store::hourly: hour out of range");
    const running_stats& agg = s.hourly[static_cast<std::size_t>(hour)];
    return agg.empty() ? nullptr : &agg;
}

running_stats metric_store::window_aggregate(series_id id) const {
    const series_data& s = series_at(id);
    running_stats total;
    for (const running_stats& day : s.daily) total.merge(day);
    return total;
}

std::span<const sample> metric_store::raw(series_id id) const {
    return series_at(id).raw;
}

}  // namespace sci
