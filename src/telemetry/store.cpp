#include "telemetry/store.hpp"

#include <algorithm>

#include "simcore/error.hpp"

namespace sci {

metric_store::metric_store(metric_registry registry, store_config config)
    : registry_(std::move(registry)), config_(config) {
    expects(config_.days > 0, "metric_store: days must be positive");
    index_.resize(registry_.size());
}

series_id metric_store::open_series(std::string_view metric, label_set labels) {
    const auto metric_index = registry_.find(metric);
    if (!metric_index.has_value()) {
        throw not_found_error("metric_store::open_series: unknown metric '" +
                              std::string(metric) + "'");
    }
    auto& by_labels = index_[*metric_index];
    const auto it = by_labels.find(labels);
    if (it != by_labels.end()) return it->second;

    const series_id id(static_cast<std::int32_t>(series_.size()));
    series_data data;
    data.metric_index = *metric_index;
    data.hourly_metric = registry_.all()[*metric_index].hourly;
    data.labels = labels;
    // day/hour slots grow sparsely on first append — a series costs
    // nothing until it actually carries samples
    series_.push_back(std::move(data));
    by_labels.emplace(std::move(labels), id);
    return id;
}

std::optional<series_id> metric_store::find_series(std::string_view metric,
                                                   const label_set& labels) const {
    const auto metric_index = registry_.find(metric);
    if (!metric_index.has_value()) return std::nullopt;
    const auto& by_labels = index_[*metric_index];
    const auto it = by_labels.find(labels);
    if (it == by_labels.end()) return std::nullopt;
    return it->second;
}

running_stats& metric_store::daily_slot(series_data& s, int day) {
    if (s.daily_first < 0) {
        s.daily_first = day;
        s.daily.emplace_back();
        return s.daily.front();
    }
    if (day < s.daily_first) {
        // front growth only happens on out-of-order block ingestion
        // (merge_daily imports); live appends are time-ascending
        s.daily.insert(s.daily.begin(),
                       static_cast<std::size_t>(s.daily_first - day),
                       running_stats{});
        s.daily_first = day;
    } else if (const auto idx = static_cast<std::size_t>(day - s.daily_first);
               idx >= s.daily.size()) {
        s.daily.resize(idx + 1);
    }
    return s.daily[static_cast<std::size_t>(day - s.daily_first)];
}

void metric_store::apply_append(series_data& s, sim_time t, double value,
                                shard_counters& counters) {
    ++counters.appended;
    const std::int64_t day = day_index(t);
    if (day < 0 || day >= config_.days) {
        ++counters.dropped;
        return;
    }
    daily_slot(s, static_cast<int>(day)).add(value);
    if (s.hourly_metric) {
        const auto hour = static_cast<std::int32_t>(t / seconds_per_hour);
        if (s.hourly_first < 0) s.hourly_first = hour;
        expects(hour >= s.hourly_first,
                "metric_store::append: hourly samples must be time-ordered");
        const auto idx = static_cast<std::size_t>(hour - s.hourly_first);
        if (idx >= s.hourly.size()) s.hourly.resize(idx + 1);
        s.hourly[idx].add(value);
    }
    if (config_.keep_raw && day > raw_sealed_through_) {
        s.raw.push_back(sample{t, value});
    } else if (config_.keep_raw) {
        ++counters.dropped;  // landed in an already-sealed (exported) day
    }
}

void metric_store::append(series_id id, sim_time t, double value) {
    expects(id.valid() && static_cast<std::size_t>(id.value()) < series_.size(),
            "metric_store::append: unknown series");
    apply_append(series_[static_cast<std::size_t>(id.value())], t, value,
                 counters_[shard_of(id)]);
}

void metric_store::apply_shards_inline(std::size_t count,
                                       const thread_pool::range_fn& fn) {
    fn(0, 0, count);
}

void metric_store::append_batch(sim_time t,
                                std::span<const sample_event> batch,
                                const sharded_runner& run) {
    // serial prep: partition the batch by series shard.  A series maps to
    // exactly one shard, so concurrent shard workers touch disjoint
    // series (and disjoint counter lines); within a shard, batch order is
    // preserved.
    for (auto& bucket : batch_shards_) bucket.clear();
    for (std::size_t i = 0; i < batch.size(); ++i) {
        expects(batch[i].id.valid() &&
                    static_cast<std::size_t>(batch[i].id.value()) <
                        series_.size(),
                "metric_store::append_batch: unknown series");
        batch_shards_[shard_of(batch[i].id)].push_back(
            static_cast<std::uint32_t>(i));
    }
    run(append_shard_count, [&](unsigned, std::size_t lo, std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
            shard_counters& counters = counters_[s];
            for (const std::uint32_t i : batch_shards_[s]) {
                const sample_event& ev = batch[i];
                apply_append(series_[static_cast<std::size_t>(ev.id.value())],
                             t, ev.value, counters);
            }
        }
    });
}

void metric_store::merge_daily(series_id id, int day,
                               const running_stats& aggregate) {
    expects(id.valid() && static_cast<std::size_t>(id.value()) < series_.size(),
            "metric_store::merge_daily: unknown series");
    expects(day >= 0 && day < config_.days,
            "metric_store::merge_daily: day out of range");
    series_data& s = series_[static_cast<std::size_t>(id.value())];
    daily_slot(s, day).merge(aggregate);
    counters_[shard_of(id)].appended += aggregate.count();
}

std::uint64_t metric_store::dropped_samples() const {
    std::uint64_t total = 0;
    for (const shard_counters& c : counters_) total += c.dropped;
    return total;
}

std::uint64_t metric_store::total_samples() const {
    std::uint64_t total = 0;
    for (const shard_counters& c : counters_) total += c.appended;
    return total;
}

void metric_store::seal_raw_through(int day, const raw_sink& sink) {
    if (!config_.keep_raw || day <= raw_sealed_through_) return;
    for (std::size_t i = 0; i < series_.size(); ++i) {
        series_data& s = series_[i];
        if (s.raw.empty()) continue;
        // samples are time-ascending: the sealed range is a prefix
        const auto cut = std::partition_point(
            s.raw.begin(), s.raw.end(),
            [day](const sample& smp) { return day_index(smp.t) <= day; });
        if (cut == s.raw.begin()) continue;
        if (sink) {
            // hand out one contiguous block per sealed day
            auto block_begin = s.raw.begin();
            while (block_begin != cut) {
                const std::int64_t block_day = day_index(block_begin->t);
                const auto block_end = std::partition_point(
                    block_begin, cut, [block_day](const sample& smp) {
                        return day_index(smp.t) == block_day;
                    });
                sink(series_id(static_cast<std::int32_t>(i)),
                     static_cast<int>(block_day),
                     std::span<const sample>(&*block_begin,
                                             static_cast<std::size_t>(
                                                 block_end - block_begin)));
                block_begin = block_end;
            }
        }
        // actually free the block (swap, so capacity goes too)
        std::vector<sample> rest(cut, s.raw.end());
        s.raw.swap(rest);
    }
    raw_sealed_through_ = day;
}

std::size_t metric_store::raw_resident_samples() const {
    std::size_t total = 0;
    for (const series_data& s : series_) total += s.raw.size();
    return total;
}

metric_store::series_view metric_store::view_of(series_id id) const {
    const series_data& s = series_at(id);
    return {s.daily_first, s.hourly_first, s.daily, s.hourly, s.raw};
}

series_id metric_store::restore_series(std::string_view metric,
                                       label_set labels,
                                       std::int32_t daily_first,
                                       std::vector<running_stats> daily,
                                       std::int32_t hourly_first,
                                       std::vector<running_stats> hourly,
                                       std::vector<sample> raw) {
    const series_id id = open_series(metric, std::move(labels));
    series_data& s = series_[static_cast<std::size_t>(id.value())];
    expects(s.daily.empty() && s.hourly.empty() && s.raw.empty(),
            "metric_store::restore_series: series already carries data");
    s.daily_first = daily_first;
    s.daily = std::move(daily);
    s.hourly_first = hourly_first;
    s.hourly = std::move(hourly);
    s.raw = std::move(raw);
    return id;
}

std::pair<std::uint64_t, std::uint64_t> metric_store::shard_counter(
    unsigned shard) const {
    expects(shard < append_shard_count,
            "metric_store::shard_counter: shard out of range");
    return {counters_[shard].appended, counters_[shard].dropped};
}

void metric_store::restore_shard_counter(unsigned shard,
                                         std::uint64_t appended,
                                         std::uint64_t dropped) {
    expects(shard < append_shard_count,
            "metric_store::restore_shard_counter: shard out of range");
    counters_[shard].appended = appended;
    counters_[shard].dropped = dropped;
}

const metric_store::series_data& metric_store::series_at(series_id id) const {
    expects(id.valid() && static_cast<std::size_t>(id.value()) < series_.size(),
            "metric_store: unknown series");
    return series_[static_cast<std::size_t>(id.value())];
}

const metric_def& metric_store::metric_of(series_id id) const {
    return registry_.all()[series_at(id).metric_index];
}

const label_set& metric_store::labels_of(series_id id) const {
    return series_at(id).labels;
}

std::vector<series_id> metric_store::select(
    std::string_view metric,
    std::span<const std::pair<std::string, std::string>> label_eq) const {
    std::vector<series_id> out;
    const auto metric_index = registry_.find(metric);
    if (!metric_index.has_value()) return out;
    for (const auto& [labels, id] : index_[*metric_index]) {
        const bool match = std::all_of(
            label_eq.begin(), label_eq.end(), [&](const auto& kv) {
                return labels.contains(kv.first, kv.second);
            });
        if (match) out.push_back(id);
    }
    // deterministic order regardless of hash-map iteration
    std::sort(out.begin(), out.end());
    return out;
}

const running_stats* metric_store::daily(series_id id, int day) const {
    const series_data& s = series_at(id);
    expects(day >= 0 && day < config_.days, "metric_store::daily: day out of range");
    if (s.daily_first < 0 || day < s.daily_first ||
        static_cast<std::size_t>(day - s.daily_first) >= s.daily.size()) {
        return nullptr;
    }
    const running_stats& agg =
        s.daily[static_cast<std::size_t>(day - s.daily_first)];
    return agg.empty() ? nullptr : &agg;
}

const running_stats* metric_store::hourly(series_id id, int hour) const {
    const series_data& s = series_at(id);
    expects(s.hourly_metric,
            "metric_store::hourly: metric not configured for hourly compaction");
    expects(hour >= 0 && hour < config_.days * 24,
            "metric_store::hourly: hour out of range");
    if (s.hourly_first < 0 || hour < s.hourly_first ||
        static_cast<std::size_t>(hour - s.hourly_first) >= s.hourly.size()) {
        return nullptr;
    }
    const running_stats& agg =
        s.hourly[static_cast<std::size_t>(hour - s.hourly_first)];
    return agg.empty() ? nullptr : &agg;
}

running_stats metric_store::window_aggregate(series_id id) const {
    const series_data& s = series_at(id);
    running_stats total;
    for (const running_stats& day : s.daily) total.merge(day);
    return total;
}

std::span<const sample> metric_store::raw(series_id id) const {
    return series_at(id).raw;
}

}  // namespace sci
