#pragma once

// A PromQL-inspired query layer over the metric store.
//
// The paper's measurement pipeline queries Prometheus/Thanos (Section 4);
// this module provides the equivalent for the reproduced store.  It
// operates on the compacted aggregates, so "range functions" take a day
// (or hour, where retained) granularity:
//
//   query q(store);
//   auto v = q.metric("vrops_hostsystem_cpu_contention_percentage")
//             .where("dc", "dc-a")
//             .daily_mean()            // -> matrix: one series per node
//             .aggregate(agg_op::max)  // -> vector over days
//
// Results are small value matrices (series x days), cheap to combine.

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "simcore/stats.hpp"
#include "telemetry/store.hpp"

namespace sci {

/// Aggregation operators over series (per time step).
enum class agg_op { sum, avg, min, max, count, quantile };

/// Which statistic of each compacted bucket to read.
enum class bucket_stat { mean, min, max, sum, count };

/// One output series: labels + one value per time step (NaN = no data).
struct query_series {
    label_set labels;
    std::vector<double> values;
};

/// A set of aligned series (the PromQL "range matrix" analogue).
struct query_matrix {
    /// Time step of `values` entries, in seconds (86400 = daily).
    sim_duration step = seconds_per_day;
    std::vector<query_series> series;

    std::size_t steps() const {
        return series.empty() ? 0 : series.front().values.size();
    }

    /// Aggregate across series into a single series (labels dropped).
    /// For agg_op::quantile supply q in (0,1).
    query_series aggregate(agg_op op, double q = 0.5) const;

    /// Aggregate across series grouped by one label key ("by (bb)").
    query_matrix aggregate_by(std::string_view label, agg_op op,
                              double q = 0.5) const;

    /// Element-wise map of every value.
    query_matrix map(const std::function<double(double)>& fn) const;

    /// Keep only series whose labels satisfy the predicate.
    query_matrix filter(
        const std::function<bool(const label_set&)>& predicate) const;

    /// Reduce each series over time to one scalar (NaN-skipping).
    std::vector<std::pair<label_set, double>> reduce_time(agg_op op,
                                                          double q = 0.5) const;

    /// The k series with the largest time-reduction under `op`.
    query_matrix top_k(std::size_t k, agg_op op = agg_op::sum) const;
};

/// Fluent query builder.
class query {
public:
    explicit query(const metric_store& store) : store_(&store) {}

    /// Select a metric (resets previous selection).
    query& metric(std::string_view name);

    /// Require an exact label match (conjunctive).
    query& where(std::string key, std::string value);

    /// Read daily buckets (default).
    query& daily() {
        hourly_ = false;
        return *this;
    }

    /// Read hourly buckets (only metrics flagged hourly in the registry).
    query& hourly() {
        hourly_ = true;
        return *this;
    }

    /// Which statistic of each bucket to extract (default mean).
    query& stat(bucket_stat s) {
        stat_ = s;
        return *this;
    }

    /// Execute; returns the matrix of matching series.
    query_matrix run() const;

    // --- conveniences -----------------------------------------------------

    /// run() with stat=mean at daily step.
    query_matrix daily_mean() const;

    /// Whole-window scalar per series (merged running_stats statistic).
    std::vector<std::pair<label_set, double>> window(bucket_stat s) const;

private:
    const metric_store* store_;
    std::string metric_;
    std::vector<std::pair<std::string, std::string>> label_eq_;
    bool hourly_ = false;
    bucket_stat stat_ = bucket_stat::mean;
};

/// Scalar aggregation helper shared with the matrix ops; NaNs skipped.
double aggregate_values(std::span<const double> values, agg_op op, double q);

}  // namespace sci
