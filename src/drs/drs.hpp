#pragma once

// VMware DRS equivalent: intra-building-block load balancing.
//
// Nova places a VM onto a *building block*; the cluster then chooses the
// concrete ESXi node and periodically migrates VMs from over- to
// under-utilized nodes ("the DRS is configured to monitor the load of the
// ESXi hosts and triggers automatic migrations ... to ensure an optimal
// resource and load distribution", Section 3.1).
//
// The balancing metric is the standard deviation of node CPU utilization
// (demand / capacity), mirroring DRS's cluster imbalance metric.  A pass
// migrates VMs until the imbalance drops below the threshold or the
// per-pass migration budget is exhausted.  Heavy VMs (large memory) are
// skipped — the paper's "avoiding migration of heavy VMs" constraint.

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "hypervisor/node_runtime.hpp"
#include "infra/fleet.hpp"
#include "infra/flavor.hpp"

namespace sci {

struct drs_config {
    /// Target imbalance: stddev of node CPU utilization (0..1 scale).
    double imbalance_threshold = 0.08;
    /// Migration budget per balancing pass.
    int max_migrations_per_pass = 4;
    /// VMs with more reserved memory than this are never auto-migrated
    /// (migration of memory-heavy VMs causes unacceptable overhead,
    /// Section 3.2 — the operational policy is conservative, which is why
    /// node-level hotspots persist for weeks in Figures 8/9).
    mebibytes heavy_vm_ram_mib = gib_to_mib(100);
    /// Minimum imbalance improvement required to accept a migration.
    double min_gain = 0.005;
    /// Allocation ratios used for admission on the destination node.
    double cpu_allocation_ratio = 4.0;
    double ram_allocation_ratio = 1.0;
    /// Disable automatic balancing entirely (ablation: DRS off).
    bool enabled = true;
    /// Memory bin-packing mode (HANA / dedicated-XL clusters): initial
    /// placement fills the fullest node that still fits instead of the
    /// emptiest — "SAP S/4HANA workloads are explicitly bin-packed to
    /// maximize memory utilization" (Section 3.2).  Produces the
    /// nearly-full vs. nearly-empty node split of Figure 10.
    bool pack_memory = false;
};

/// One recommended (and applied) migration.
struct drs_migration {
    vm_id vm;
    node_id from;
    node_id to;
};

/// Demand oracle: instantaneous CPU demand (cores) of a VM.  Provided by
/// the engine, which owns the workload behaviors.
using vm_cpu_demand_fn = std::function<double(vm_id)>;

/// Flavor oracle: resolves a VM's flavor (for reservation accounting).
using vm_flavor_fn = std::function<const flavor&(vm_id)>;

/// One vSphere cluster: the node runtimes of a building block plus the
/// DRS balancing logic.
class drs_cluster {
public:
    drs_cluster(const building_block& block, drs_config config);

    bb_id bb() const { return bb_; }
    const drs_config& config() const { return config_; }

    /// Initial node placement: the admissible node with the lowest
    /// reserved-CPU utilization (DRS initial placement recommendation).
    /// Returns nullopt when no node admits the flavor.
    std::optional<node_id> initial_placement(const flavor& f) const;

    /// Place / remove a VM on a concrete node.
    void place(vm_id vm, const flavor& f, node_id node);
    void remove(vm_id vm, const flavor& f, node_id node);

    /// Monotonic counter bumped by every place/remove (any node).  While
    /// it is unchanged the cluster's reservations are bitwise identical,
    /// so a speculated initial_placement result is still exact — the
    /// engine's batched cross-BB target speculation keys on this.
    std::uint64_t usage_version() const { return usage_version_; }

    /// Current imbalance given per-VM demand.
    double imbalance(const vm_cpu_demand_fn& demand) const;

    /// Plan one balancing pass against a frozen copy of the node state
    /// without mutating the cluster.  The plan replays the exact
    /// place/remove sequence of the classic eager pass on the copy, so the
    /// returned moves — order included — are bit-identical to what the
    /// eager pass would have applied.  Being const, planning is safe to
    /// fan out across clusters (and across regions sharing one pool)
    /// while readers observe the live state; the caller commits serially
    /// via begin_pass() + commit_migration()/abort_migration().
    std::vector<drs_migration> plan_rebalance(
        const vm_cpu_demand_fn& demand, const vm_flavor_fn& flavor_of) const;

    /// Open the serial commit of one planned pass: resets the per-pass
    /// abort-charge dedup window.
    void begin_pass();

    /// Commit one planned migration: remove from the source, place on the
    /// target (one usage_version_ bump each), count it.
    void commit_migration(const drs_migration& m, const flavor& f);

    /// A planned migration whose pre-copy aborted: the VM never left its
    /// source, but the move still counts as attempted and the wasted
    /// pre-copy is charged (see record_abort).  Node state — and therefore
    /// usage_version() — is untouched: an aborted move leaves reservations
    /// bitwise identical, so open speculations keyed on the version stay
    /// exact.
    void abort_migration(const drs_migration& m);

    /// Run one balancing pass; applies and returns migrations.  Equivalent
    /// to begin_pass() + plan_rebalance() + commit_migration() per move —
    /// the single-caller convenience the engine's split commit no longer
    /// uses but direct consumers (tests, tools) still do.
    std::vector<drs_migration> rebalance(const vm_cpu_demand_fn& demand,
                                         const vm_flavor_fn& flavor_of);

    const std::vector<node_runtime>& nodes() const { return nodes_; }
    node_runtime& node(node_id id);
    const node_runtime& node(node_id id) const;

    /// Total migrations applied over the cluster's lifetime.
    std::uint64_t migration_count() const { return migrations_; }

    /// An applied migration aborted mid-copy (sci::fault): the caller
    /// rolled the VM back to its source node; the pre-copy bandwidth was
    /// still spent.  Recorded here so DRS cost accounting can separate
    /// useful from wasted migration work.  Asserts the VM has not already
    /// been charged this pass — a re-speculated move that aborts again
    /// must not double-bill the wasted pre-copy.
    void record_abort(vm_id vm);
    std::uint64_t abort_count() const { return aborts_; }

    /// Migrations that completed (applied minus aborted).
    std::uint64_t completed_migration_count() const {
        return migrations_ - aborts_;
    }

    // --- snapshot / fork support ------------------------------------------
    /// Flip automatic balancing post-restore (fork ablation arm).  Pure
    /// policy: plan_rebalance returns no moves when disabled and nothing
    /// else reads the flag, so the event stream is untouched.
    void set_enabled(bool enabled) { config_.enabled = enabled; }

    /// Rewrite the admission ratios post-restore (overcommit fork arm).
    void set_allocation_ratios(double cpu, double ram) {
        config_.cpu_allocation_ratio = cpu;
        config_.ram_allocation_ratio = ram;
    }

    /// Overwrite the lifetime counters with checkpointed values.  The
    /// per-pass abort dedup window is cleared — a snapshot barrier never
    /// falls inside a pass.
    void restore_counters(std::uint64_t migrations, std::uint64_t aborts,
                          std::uint64_t usage_version) {
        migrations_ = migrations;
        aborts_ = aborts;
        usage_version_ = usage_version;
        aborted_this_pass_.clear();
    }

private:
    /// Node CPU demand in cores (sum over residents).
    double node_demand_cores(const node_runtime& nr,
                             const vm_cpu_demand_fn& demand) const;

    bb_id bb_;
    drs_config config_;
    std::vector<node_runtime> nodes_;
    std::uint64_t migrations_ = 0;
    std::uint64_t aborts_ = 0;
    std::uint64_t usage_version_ = 0;
    std::vector<vm_id> aborted_this_pass_;  ///< record_abort dedup window
};

}  // namespace sci
