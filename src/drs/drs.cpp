#include "drs/drs.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "simcore/error.hpp"
#include "simcore/stats.hpp"

namespace sci {

drs_cluster::drs_cluster(const building_block& block, drs_config config)
    : bb_(block.id), config_(config) {
    expects(!block.nodes.empty(), "drs_cluster: building block has no nodes");
    expects(config_.imbalance_threshold >= 0.0,
            "drs_cluster: negative imbalance threshold");
    nodes_.reserve(block.nodes.size());
    for (node_id id : block.nodes) {
        nodes_.emplace_back(id, block.profile);
    }
}

node_runtime& drs_cluster::node(node_id id) {
    for (node_runtime& nr : nodes_) {
        if (nr.id() == id) return nr;
    }
    throw not_found_error("drs_cluster::node: node not in cluster");
}

const node_runtime& drs_cluster::node(node_id id) const {
    for (const node_runtime& nr : nodes_) {
        if (nr.id() == id) return nr;
    }
    throw not_found_error("drs_cluster::node: node not in cluster");
}

std::optional<node_id> drs_cluster::initial_placement(const flavor& f) const {
    const node_runtime* best = nullptr;
    double best_score = std::numeric_limits<double>::infinity();
    for (const node_runtime& nr : nodes_) {
        if (!nr.accepting()) continue;
        if (!nr.fits(f, config_.cpu_allocation_ratio, config_.ram_allocation_ratio)) {
            continue;
        }
        // combined reserved utilization; memory dominates for HANA hosts
        const double util =
            0.5 * nr.cpu_overcommit() / config_.cpu_allocation_ratio +
            0.5 * nr.ram_reserved_ratio();
        // spread mode prefers the emptiest node, memory bin-packing the
        // fullest node that still fits
        const double score = config_.pack_memory ? -nr.ram_reserved_ratio() : util;
        if (score < best_score) {
            best_score = score;
            best = &nr;
        }
    }
    if (best == nullptr) return std::nullopt;
    return best->id();
}

void drs_cluster::place(vm_id vm, const flavor& f, node_id node_target) {
    node(node_target).place(vm, f);
    ++usage_version_;
}

void drs_cluster::remove(vm_id vm, const flavor& f, node_id node_target) {
    node(node_target).remove(vm, f);
    ++usage_version_;
}

void drs_cluster::record_abort(vm_id vm) {
    expects(std::find(aborted_this_pass_.begin(), aborted_this_pass_.end(),
                      vm) == aborted_this_pass_.end(),
            "drs_cluster::record_abort: wasted pre-copy already charged");
    aborted_this_pass_.push_back(vm);
    ++aborts_;
}

double drs_cluster::node_demand_cores(const node_runtime& nr,
                                      const vm_cpu_demand_fn& demand) const {
    double total = 0.0;
    for (vm_id vm : nr.residents()) total += demand(vm);
    return total;
}

double drs_cluster::imbalance(const vm_cpu_demand_fn& demand) const {
    running_stats utils;
    for (const node_runtime& nr : nodes_) {
        const double cap = static_cast<double>(nr.profile().pcpu_cores);
        utils.add(node_demand_cores(nr, demand) / cap);
    }
    return utils.stddev();
}

std::vector<drs_migration> drs_cluster::plan_rebalance(
    const vm_cpu_demand_fn& demand, const vm_flavor_fn& flavor_of) const {
    std::vector<drs_migration> planned;
    if (!config_.enabled || nodes_.size() < 2) return planned;

    // Plan against a frozen copy of the node runtimes and replay the
    // classic eager pass on the copy: candidate scans see earlier in-pass
    // moves through the copy's node-ordered residents and reservation
    // sums, so the plan — move order included — is bit-identical to what
    // the eager commit produced, while the live cluster stays untouched.
    std::vector<node_runtime> view = nodes_;

    // cache per-node demand; updated incrementally as we move VMs
    std::vector<double> demands(view.size());
    for (std::size_t i = 0; i < view.size(); ++i) {
        demands[i] = node_demand_cores(view[i], demand);
    }
    const auto util = [&](std::size_t i) {
        return demands[i] / static_cast<double>(view[i].profile().pcpu_cores);
    };
    const auto stddev_util = [&] {
        running_stats s;
        for (std::size_t i = 0; i < view.size(); ++i) s.add(util(i));
        return s.stddev();
    };

    for (int pass = 0; pass < config_.max_migrations_per_pass; ++pass) {
        const double current = stddev_util();
        if (current <= config_.imbalance_threshold) break;
        if (config_.pack_memory) {
            // memory-packed clusters tolerate CPU imbalance: only rebalance
            // when some node is actually oversubscribed (demand > capacity)
            const bool any_oversubscribed = [&] {
                for (std::size_t i = 0; i < view.size(); ++i) {
                    if (util(i) > 1.0) return true;
                }
                return false;
            }();
            if (!any_oversubscribed) break;
        }

        // donor = most utilized, receiver = least utilized accepting node
        std::size_t donor = 0;
        std::optional<std::size_t> receiver_opt;
        for (std::size_t i = 1; i < view.size(); ++i) {
            if (util(i) > util(donor)) donor = i;
        }
        for (std::size_t i = 0; i < view.size(); ++i) {
            if (i == donor || !view[i].accepting()) continue;
            if (!receiver_opt.has_value() || util(i) < util(*receiver_opt)) {
                receiver_opt = i;
            }
        }
        if (!receiver_opt.has_value()) break;
        const std::size_t receiver = *receiver_opt;

        // candidate VM on the donor: demand closest to half the gap,
        // skipping heavy VMs and VMs the receiver cannot admit
        const double gap_cores =
            (util(donor) - util(receiver)) *
            static_cast<double>(view[donor].profile().pcpu_cores);
        const double ideal = gap_cores / 2.0;

        vm_id best_vm;
        double best_delta = std::numeric_limits<double>::infinity();
        double best_demand = 0.0;
        for (vm_id vm : view[donor].residents()) {
            const flavor& f = flavor_of(vm);
            if (f.ram_mib > config_.heavy_vm_ram_mib) continue;
            if (!view[receiver].fits(f, config_.cpu_allocation_ratio,
                                     config_.ram_allocation_ratio)) {
                continue;
            }
            const double d = demand(vm);
            if (d <= 0.0 || d > gap_cores) continue;  // would overshoot
            const double delta = std::abs(d - ideal);
            if (delta < best_delta) {
                best_delta = delta;
                best_vm = vm;
                best_demand = d;
            }
        }
        if (!best_vm.valid()) break;  // nothing movable

        // check the move actually improves imbalance by min_gain
        demands[donor] -= best_demand;
        demands[receiver] += best_demand;
        const double after = stddev_util();
        if (current - after < config_.min_gain) {
            demands[donor] += best_demand;
            demands[receiver] -= best_demand;
            break;
        }

        const flavor& f = flavor_of(best_vm);
        view[donor].remove(best_vm, f);
        view[receiver].place(best_vm, f);
        planned.push_back(
            drs_migration{best_vm, view[donor].id(), view[receiver].id()});
    }
    return planned;
}

void drs_cluster::begin_pass() {
    aborted_this_pass_.clear();  // new pass: a fresh abort-charge window
}

void drs_cluster::commit_migration(const drs_migration& m, const flavor& f) {
    remove(m.vm, f, m.from);
    place(m.vm, f, m.to);
    ++migrations_;
}

void drs_cluster::abort_migration(const drs_migration& m) {
    ++migrations_;  // the move was attempted; pre-copy bandwidth was spent
    record_abort(m.vm);
}

std::vector<drs_migration> drs_cluster::rebalance(
    const vm_cpu_demand_fn& demand, const vm_flavor_fn& flavor_of) {
    begin_pass();
    const std::vector<drs_migration> planned = plan_rebalance(demand, flavor_of);
    for (const drs_migration& m : planned) commit_migration(m, flavor_of(m.vm));
    return planned;
}

}  // namespace sci
