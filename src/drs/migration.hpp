#pragma once

// Live-migration cost model.
//
// Section 3.2 ("Avoiding migration of heavy VMs"): "When implementing a
// seamless migration, either the (updated) memory pages or deltas need to
// be copied from the original source to the new destination ... Different
// solutions exist ... but introduce performance penalties.  Therefore, it
// is preferred not to migrate but provide enough resources in advance."
//
// We model the standard iterative pre-copy algorithm (vMotion-style):
// round 0 transfers the full resident memory; while pages are dirtied
// faster than they can be re-sent, further rounds transfer the delta;
// when the remaining dirty set falls below the stop-and-copy threshold
// (or the round budget is exhausted) the VM is paused and the rest is
// copied — that pause is the downtime.  A dirty rate at or above the
// transfer bandwidth never converges.

#include "simcore/units.hpp"

namespace sci {

struct migration_cost_config {
    /// Migration (vMotion) network bandwidth per transfer, in MiB/s.
    /// 10 Gbps dedicated link ≈ 1,192 MiB/s.
    double bandwidth_mib_per_s = 1192.0;
    /// Stop-and-copy threshold: pause the VM when the dirty set is below
    /// this size.
    mebibytes stop_and_copy_mib = 256;
    /// Maximum pre-copy rounds before forcing stop-and-copy.
    int max_precopy_rounds = 16;
};

struct migration_estimate {
    bool converges = true;        ///< dirty rate < bandwidth
    int precopy_rounds = 0;       ///< rounds before stop-and-copy
    double total_seconds = 0.0;   ///< wall-clock duration of the migration
    double downtime_ms = 0.0;     ///< stop-and-copy pause
    double transferred_mib = 0.0; ///< total bytes moved (>= resident size)
};

/// Estimate one live migration.
///   resident_mib       memory that must move (consumed, not flavor size)
///   dirty_mib_per_s    rate at which the guest dirties pages
migration_estimate estimate_live_migration(
    mebibytes resident_mib, double dirty_mib_per_s,
    const migration_cost_config& config = {});

/// Rough dirty-page rate of a VM from its observable activity: CPU-active
/// cores each touch memory at `dirty_mib_per_core_s`.  In-memory database
/// workloads dirty more per core than general-purpose ones.
double estimate_dirty_rate(double active_cores, bool memory_intensive);

}  // namespace sci
