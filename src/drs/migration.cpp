#include "drs/migration.hpp"

#include "simcore/error.hpp"

namespace sci {

migration_estimate estimate_live_migration(
    mebibytes resident_mib, double dirty_mib_per_s,
    const migration_cost_config& config) {
    expects(resident_mib >= 0, "estimate_live_migration: negative memory");
    expects(dirty_mib_per_s >= 0.0, "estimate_live_migration: negative rate");
    expects(config.bandwidth_mib_per_s > 0.0,
            "estimate_live_migration: bandwidth must be positive");
    expects(config.max_precopy_rounds >= 0,
            "estimate_live_migration: negative round budget");

    migration_estimate est;
    const double bw = config.bandwidth_mib_per_s;
    double remaining = static_cast<double>(resident_mib);

    if (dirty_mib_per_s >= bw) {
        // pre-copy cannot catch up; a real system would throttle the guest
        // or fall back to stop-and-copy of the full resident set
        est.converges = false;
        est.precopy_rounds = 0;
        est.transferred_mib = remaining;
        est.total_seconds = remaining / bw;
        est.downtime_ms = est.total_seconds * 1000.0;
        return est;
    }

    while (remaining > static_cast<double>(config.stop_and_copy_mib) &&
           est.precopy_rounds < config.max_precopy_rounds) {
        const double round_seconds = remaining / bw;
        est.transferred_mib += remaining;
        est.total_seconds += round_seconds;
        remaining = dirty_mib_per_s * round_seconds;  // dirtied during copy
        ++est.precopy_rounds;
    }

    // stop-and-copy of whatever is left
    const double final_seconds = remaining / bw;
    est.transferred_mib += remaining;
    est.total_seconds += final_seconds;
    est.downtime_ms = final_seconds * 1000.0;
    return est;
}

double estimate_dirty_rate(double active_cores, bool memory_intensive) {
    expects(active_cores >= 0.0, "estimate_dirty_rate: negative cores");
    // Empirical ballpark: a busy general-purpose core dirties a few tens of
    // MiB/s; in-memory database cores churn working sets far harder.
    const double per_core = memory_intensive ? 180.0 : 40.0;
    return active_cores * per_core;
}

}  // namespace sci
