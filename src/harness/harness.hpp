#pragma once

// sci::harness — scenario runner, replay traces, and JSON reporting.
//
// run_scenario plays one parsed scenario through a fresh sim_engine with
// an invariant_monitor attached, then fingerprints the run: an FNV-1a
// hash over every event-log row (reasons included) and one over the
// deterministic run_stats fields (wall-clock timings excluded).  The
// fingerprints are bit-identical at any SCI_THREADS — that is the
// engine's core determinism contract — so a trace recorded once replays
// as a regression check: same scenario + same window ⇒ same hashes.
//
// Trace files are recorded (--record) rather than committed: the hashes
// cover floating-point history, which is reproducible on one toolchain
// but not across libm versions.  CI records and replays within one job.
//
// outcomes_json renders the pass/fail summary CI parses (hand-rolled
// writer, same idiom as bench/bench_json).

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.hpp"
#include "harness/invariants.hpp"
#include "harness/scenario_dsl.hpp"

namespace sci::harness {

struct run_options {
    /// Cap the simulated window to this many days (0 = full window).
    int days = 0;
    /// Write/refresh the scenario's replay trace instead of comparing.
    bool record_trace = false;
    /// Worker-thread override for this run (else engine_config semantics:
    /// SCI_THREADS environment variable).
    std::optional<unsigned> threads;
    /// Assert the scrape-checkable invariants at every scrape barrier
    /// instead of spot-checking (sciverify --watch).
    bool watch = false;
};

enum class replay_status {
    none,        ///< scenario declares no trace
    recorded,    ///< trace written this run
    matched,     ///< hashes equal the recorded trace
    mismatched,  ///< regression: hashes differ
    skipped,     ///< no trace on disk (or window mismatch)
};

std::string_view to_string(replay_status s);

struct scenario_outcome {
    std::string name;
    int days = observation_days;
    run_stats stats;
    std::vector<invariant_result> invariants;
    std::uint64_t event_count = 0;
    std::uint64_t events_hash = 0;
    std::uint64_t stats_hash = 0;
    replay_status replay = replay_status::none;
    std::string replay_detail;

    /// Green = every invariant holds and the replay (if any) matched.
    bool passed() const;
};

/// FNV-1a over the deterministic run_stats fields (counters and
/// migration figures; the *_wall_ms host timings are excluded).
std::uint64_t stats_fingerprint(const run_stats& stats);

/// FNV-1a over every event row: t, kind, vm, bb, from, to, reason.
std::uint64_t events_fingerprint(const event_log& events);

/// A recorded replay trace (key = value text, one fingerprint per line).
struct trace_record {
    std::string scenario;
    int days = 0;
    std::uint64_t event_count = 0;
    std::uint64_t events_hash = 0;
    std::uint64_t stats_hash = 0;
};

void write_trace_file(const trace_record& trace,
                      const std::filesystem::path& file);

/// nullopt when the file does not exist; throws on a malformed file.
std::optional<trace_record> read_trace_file(const std::filesystem::path& file);

/// Run one scenario end to end: engine + monitor + fingerprints + replay.
scenario_outcome run_scenario(const scenario_spec& spec,
                              const run_options& options = {});

/// The machine-parseable summary: {"passed": ..., "scenarios": [...]}.
std::string outcomes_json(std::span<const scenario_outcome> outcomes);

}  // namespace sci::harness
