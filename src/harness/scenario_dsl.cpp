#include "harness/scenario_dsl.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "simcore/error.hpp"
#include "simcore/rng.hpp"

namespace sci::harness {

namespace {

std::string_view trim(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
        s.remove_prefix(1);
    }
    while (!s.empty() &&
           (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
        s.remove_suffix(1);
    }
    return s;
}

[[noreturn]] void parse_fail(int line, const std::string& message) {
    throw error("scenario parse: line " + std::to_string(line) + ": " +
                message);
}

bool parse_bool(std::string_view value, int line) {
    if (value == "true") return true;
    if (value == "false") return false;
    parse_fail(line, "expected true/false, got '" + std::string(value) + "'");
}

double parse_double(std::string_view value, int line) {
    double out = 0.0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), out);
    if (ec != std::errc{} || ptr != value.data() + value.size()) {
        parse_fail(line, "expected a number, got '" + std::string(value) + "'");
    }
    return out;
}

std::int64_t parse_int(std::string_view value, int line) {
    std::int64_t out = 0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), out);
    if (ec != std::errc{} || ptr != value.data() + value.size()) {
        parse_fail(line,
                   "expected an integer, got '" + std::string(value) + "'");
    }
    return out;
}

/// Shortest decimal that round-trips the double (so rendered files stay
/// as readable as hand-written ones and parse back bit-identically).
std::string format_double(double value) {
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    ensures(ec == std::errc{}, "format_double: to_chars failed");
    return std::string(buf, ptr);
}

enum class section {
    none, scenario, engine, fault, backpressure, invariants, snapshot, region,
    replay
};

}  // namespace

scenario_spec parse_scenario(std::string_view text) {
    scenario_spec spec;
    section current = section::none;
    std::size_t current_region = 0;  // index into spec.regions while parsing
    int line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t eol = text.find('\n', pos);
        std::string_view line = text.substr(
            pos, eol == std::string_view::npos ? text.size() - pos
                                               : eol - pos);
        pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
        ++line_no;

        if (const std::size_t hash = line.find('#');
            hash != std::string_view::npos) {
            line = line.substr(0, hash);
        }
        line = trim(line);
        if (line.empty()) continue;

        if (line.front() == '[') {
            if (line.back() != ']') parse_fail(line_no, "unterminated section");
            const std::string_view name = line.substr(1, line.size() - 2);
            if (name == "scenario") current = section::scenario;
            else if (name == "engine") current = section::engine;
            else if (name == "fault") current = section::fault;
            else if (name == "backpressure") current = section::backpressure;
            else if (name == "invariants") current = section::invariants;
            else if (name == "snapshot") current = section::snapshot;
            else if (name == "replay") current = section::replay;
            else if (name.starts_with("region.")) {
                const std::string_view index_text = name.substr(7);
                const std::int64_t index = parse_int(index_text, line_no);
                if (index < 0) parse_fail(line_no, "negative region index");
                for (const region_override& r : spec.regions) {
                    if (r.index == static_cast<std::size_t>(index)) {
                        parse_fail(line_no, "duplicate section '[" +
                                                std::string(name) + "]'");
                    }
                }
                region_override region;
                region.index = static_cast<std::size_t>(index);
                current_region = spec.regions.size();
                spec.regions.push_back(region);
                current = section::region;
            }
            else parse_fail(line_no,
                            "unknown section '" + std::string(name) + "'");
            continue;
        }

        const std::size_t eq = line.find('=');
        if (eq == std::string_view::npos) {
            parse_fail(line_no, "expected 'key = value'");
        }
        const std::string_view key = trim(line.substr(0, eq));
        const std::string_view value = trim(line.substr(eq + 1));
        if (key.empty()) parse_fail(line_no, "empty key");

        engine_config& cfg = spec.config;
        fault_config& fault = cfg.fault;
        invariant_config& inv = spec.invariants;
        switch (current) {
            case section::none:
                parse_fail(line_no, "key outside any [section]");
            case section::scenario:
                if (key == "name") spec.name = std::string(value);
                else if (key == "description") {
                    spec.description = std::string(value);
                } else {
                    parse_fail(line_no, "unknown [scenario] key '" +
                                            std::string(key) + "'");
                }
                break;
            case section::engine:
                if (key == "scale") {
                    cfg.scenario.scale = parse_double(value, line_no);
                } else if (key == "seed") {
                    // one seed drives the whole run: fleet construction,
                    // population sampling, and the fault schedule
                    const auto seed = static_cast<std::uint64_t>(
                        parse_int(value, line_no));
                    cfg.scenario.seed = seed;
                    cfg.population.seed = seed;
                } else if (key == "sampling_interval") {
                    cfg.sampling_interval =
                        static_cast<sim_duration>(parse_int(value, line_no));
                } else if (key == "drs_interval") {
                    cfg.drs_interval =
                        static_cast<sim_duration>(parse_int(value, line_no));
                } else if (key == "cross_bb_interval") {
                    cfg.cross_bb_interval =
                        static_cast<sim_duration>(parse_int(value, line_no));
                } else if (key == "contention_aware") {
                    cfg.contention_aware = parse_bool(value, line_no);
                } else if (key == "holistic") {
                    cfg.holistic = parse_bool(value, line_no);
                } else if (key == "lifetime_aware") {
                    cfg.lifetime_aware = parse_bool(value, line_no);
                } else if (key == "node_churn_fraction") {
                    cfg.node_churn_fraction = parse_double(value, line_no);
                } else if (key == "daily_resize_fraction") {
                    cfg.daily_resize_fraction = parse_double(value, line_no);
                } else if (key == "daily_churn_fraction") {
                    cfg.population.daily_churn_fraction =
                        parse_double(value, line_no);
                } else if (key == "project_count") {
                    cfg.population.project_count =
                        static_cast<int>(parse_int(value, line_no));
                } else if (key == "gp_cpu_allocation_ratio") {
                    cfg.gp_cpu_allocation_ratio_override =
                        parse_double(value, line_no);
                } else {
                    parse_fail(line_no, "unknown [engine] key '" +
                                            std::string(key) + "'");
                }
                break;
            case section::fault:
                if (key == "crash_rate_per_day") {
                    fault.host_crash_rate_per_day =
                        parse_double(value, line_no);
                } else if (key == "claim_failure_probability") {
                    fault.claim_failure_probability =
                        parse_double(value, line_no);
                } else if (key == "migration_abort_probability") {
                    fault.migration_abort_probability =
                        parse_double(value, line_no);
                } else if (key == "degraded_node_fraction") {
                    fault.degraded_node_fraction =
                        parse_double(value, line_no);
                } else if (key == "degraded_cpu_factor") {
                    fault.degraded_cpu_factor = parse_double(value, line_no);
                } else if (key == "maintenance_windows") {
                    fault.maintenance_windows =
                        static_cast<int>(parse_int(value, line_no));
                } else if (key == "maintenance_duration") {
                    fault.maintenance_duration =
                        static_cast<sim_duration>(parse_int(value, line_no));
                } else if (key == "az_outages") {
                    fault.az_outages =
                        static_cast<int>(parse_int(value, line_no));
                } else if (key == "az_outage_at") {
                    fault.az_outage_at =
                        static_cast<sim_duration>(parse_int(value, line_no));
                } else if (key == "az_outage_repair_time") {
                    fault.az_outage_repair_time =
                        static_cast<sim_duration>(parse_int(value, line_no));
                } else if (key == "ha_restart_delay") {
                    fault.ha_restart_delay =
                        static_cast<sim_duration>(parse_int(value, line_no));
                } else if (key == "ha_retry_backoff") {
                    fault.ha_retry_backoff =
                        static_cast<sim_duration>(parse_int(value, line_no));
                } else if (key == "ha_max_restart_attempts") {
                    fault.ha_max_restart_attempts =
                        static_cast<int>(parse_int(value, line_no));
                } else if (key == "crash_repair_time") {
                    fault.crash_repair_time =
                        static_cast<sim_duration>(parse_int(value, line_no));
                } else {
                    parse_fail(line_no, "unknown [fault] key '" +
                                            std::string(key) + "'");
                }
                break;
            case section::backpressure:
                if (key == "mode") {
                    const auto mode = backpressure_mode_from(value);
                    if (!mode.has_value()) {
                        parse_fail(line_no,
                                   "expected degrade/queue/shed, got '" +
                                       std::string(value) + "'");
                    }
                    cfg.backpressure.mode = *mode;
                } else if (key == "queue_capacity") {
                    const std::int64_t capacity = parse_int(value, line_no);
                    if (capacity < 0) {
                        parse_fail(line_no, "queue_capacity must be >= 0");
                    }
                    cfg.backpressure.queue_capacity =
                        static_cast<std::uint32_t>(capacity);
                } else if (key == "queue_deadline") {
                    cfg.backpressure.queue_deadline =
                        static_cast<sim_duration>(parse_int(value, line_no));
                } else {
                    parse_fail(line_no, "unknown [backpressure] key '" +
                                            std::string(key) + "'");
                }
                break;
            case section::invariants:
                if (key == "admission_accounting") {
                    inv.admission_accounting = parse_bool(value, line_no);
                } else if (key == "no_silent_drops") {
                    inv.no_silent_drops = parse_bool(value, line_no);
                } else if (key == "conservation") {
                    inv.conservation = parse_bool(value, line_no);
                } else if (key == "no_blackhole") {
                    inv.no_blackhole = parse_bool(value, line_no);
                } else if (key == "backpressure_stability") {
                    inv.backpressure_stability = parse_bool(value, line_no);
                } else if (key == "flapping_max_moves_per_vm_day") {
                    inv.flapping_max_moves_per_vm_day =
                        static_cast<int>(parse_int(value, line_no));
                } else if (key == "imbalance_epsilon") {
                    inv.imbalance_epsilon = parse_double(value, line_no);
                } else if (key == "recovery_p99_seconds") {
                    inv.recovery_p99_seconds = parse_double(value, line_no);
                } else if (key == "cross_region_conservation") {
                    inv.cross_region_conservation = parse_bool(value, line_no);
                } else if (key == "restore_bit_identity") {
                    inv.restore_bit_identity = parse_bool(value, line_no);
                } else {
                    parse_fail(line_no, "unknown [invariants] key '" +
                                            std::string(key) + "'");
                }
                break;
            case section::snapshot:
                if (key == "at") {
                    const std::int64_t at = parse_int(value, line_no);
                    if (at <= 0) {
                        parse_fail(line_no,
                                   "snapshot barrier must be positive");
                    }
                    spec.snapshot_at = static_cast<sim_duration>(at);
                } else {
                    parse_fail(line_no, "unknown [snapshot] key '" +
                                            std::string(key) + "'");
                }
                break;
            case section::region: {
                region_override& region = spec.regions[current_region];
                if (key == "name") {
                    region.name = std::string(value);
                } else if (key == "scale") {
                    region.scale = parse_double(value, line_no);
                } else if (key == "seed") {
                    region.seed =
                        static_cast<std::uint64_t>(parse_int(value, line_no));
                } else if (key == "daily_churn_fraction") {
                    region.daily_churn_fraction = parse_double(value, line_no);
                } else if (key == "crash_rate_per_day") {
                    region.crash_rate_per_day = parse_double(value, line_no);
                } else if (key == "migration_abort_probability") {
                    region.migration_abort_probability =
                        parse_double(value, line_no);
                } else if (key == "az_outages") {
                    region.az_outages =
                        static_cast<int>(parse_int(value, line_no));
                } else if (key == "az_outage_at") {
                    region.az_outage_at =
                        static_cast<sim_duration>(parse_int(value, line_no));
                } else if (key == "az_outage_repair_time") {
                    region.az_outage_repair_time =
                        static_cast<sim_duration>(parse_int(value, line_no));
                } else {
                    parse_fail(line_no, "unknown [region] key '" +
                                            std::string(key) + "'");
                }
                break;
            }
            case section::replay:
                if (key == "trace") {
                    spec.trace = std::filesystem::path(std::string(value));
                } else {
                    parse_fail(line_no, "unknown [replay] key '" +
                                            std::string(key) + "'");
                }
                break;
        }
    }
    if (spec.name.empty()) {
        throw error("scenario parse: missing [scenario] name");
    }
    // canonical region order: by index, and the indexes must be exactly
    // 0..K-1 (a gap would silently drop a region the author counted on)
    std::sort(spec.regions.begin(), spec.regions.end(),
              [](const region_override& a, const region_override& b) {
                  return a.index < b.index;
              });
    for (std::size_t r = 0; r < spec.regions.size(); ++r) {
        if (spec.regions[r].index != r) {
            throw error("scenario parse: region indexes must be contiguous "
                        "from 0; missing [region." +
                        std::to_string(r) + "]");
        }
    }
    return spec;
}

std::vector<region_spec> region_specs_of(const scenario_spec& spec) {
    std::vector<region_spec> out;
    if (spec.regions.empty()) {
        out.push_back(region_spec{"region0", spec.config});
        return out;
    }
    out.reserve(spec.regions.size());
    for (const region_override& region : spec.regions) {
        region_spec rs;
        rs.name = region.name.empty()
                      ? "region" + std::to_string(region.index)
                      : region.name;
        rs.config = spec.config;
        const std::uint64_t seed = region.seed.value_or(
            derive_region_seed(spec.config.scenario.seed, region.index));
        rs.config.scenario.seed = seed;
        rs.config.population.seed = seed;
        if (region.scale.has_value()) rs.config.scenario.scale = *region.scale;
        if (region.daily_churn_fraction.has_value()) {
            rs.config.population.daily_churn_fraction =
                *region.daily_churn_fraction;
        }
        if (region.crash_rate_per_day.has_value()) {
            rs.config.fault.host_crash_rate_per_day = *region.crash_rate_per_day;
        }
        if (region.migration_abort_probability.has_value()) {
            rs.config.fault.migration_abort_probability =
                *region.migration_abort_probability;
        }
        if (region.az_outages.has_value()) {
            rs.config.fault.az_outages = *region.az_outages;
        }
        if (region.az_outage_at.has_value()) {
            rs.config.fault.az_outage_at = *region.az_outage_at;
        }
        if (region.az_outage_repair_time.has_value()) {
            rs.config.fault.az_outage_repair_time =
                *region.az_outage_repair_time;
        }
        out.push_back(std::move(rs));
    }
    for (std::size_t a = 0; a < out.size(); ++a) {
        for (std::size_t b = a + 1; b < out.size(); ++b) {
            if (out[a].name == out[b].name) {
                throw error("region_specs_of: duplicate region name '" +
                            out[a].name + "'");
            }
        }
    }
    return out;
}

std::string render_scenario(const scenario_spec& spec) {
    const engine_config& cfg = spec.config;
    const fault_config& fault = cfg.fault;
    const invariant_config& inv = spec.invariants;
    std::ostringstream out;
    const auto boolean = [](bool b) { return b ? "true" : "false"; };
    out << "[scenario]\n";
    out << "name = " << spec.name << "\n";
    out << "description = " << spec.description << "\n";
    out << "\n[engine]\n";
    out << "scale = " << format_double(cfg.scenario.scale) << "\n";
    out << "seed = " << cfg.scenario.seed << "\n";
    out << "sampling_interval = " << cfg.sampling_interval << "\n";
    out << "drs_interval = " << cfg.drs_interval << "\n";
    out << "cross_bb_interval = " << cfg.cross_bb_interval << "\n";
    out << "contention_aware = " << boolean(cfg.contention_aware) << "\n";
    out << "holistic = " << boolean(cfg.holistic) << "\n";
    out << "lifetime_aware = " << boolean(cfg.lifetime_aware) << "\n";
    out << "node_churn_fraction = " << format_double(cfg.node_churn_fraction)
        << "\n";
    out << "daily_resize_fraction = "
        << format_double(cfg.daily_resize_fraction) << "\n";
    out << "daily_churn_fraction = "
        << format_double(cfg.population.daily_churn_fraction) << "\n";
    out << "project_count = " << cfg.population.project_count << "\n";
    if (cfg.gp_cpu_allocation_ratio_override.has_value()) {
        out << "gp_cpu_allocation_ratio = "
            << format_double(*cfg.gp_cpu_allocation_ratio_override) << "\n";
    }
    out << "\n[fault]\n";
    out << "crash_rate_per_day = "
        << format_double(fault.host_crash_rate_per_day) << "\n";
    out << "claim_failure_probability = "
        << format_double(fault.claim_failure_probability) << "\n";
    out << "migration_abort_probability = "
        << format_double(fault.migration_abort_probability) << "\n";
    out << "degraded_node_fraction = "
        << format_double(fault.degraded_node_fraction) << "\n";
    out << "degraded_cpu_factor = " << format_double(fault.degraded_cpu_factor)
        << "\n";
    out << "maintenance_windows = " << fault.maintenance_windows << "\n";
    out << "maintenance_duration = " << fault.maintenance_duration << "\n";
    out << "az_outages = " << fault.az_outages << "\n";
    out << "az_outage_at = " << fault.az_outage_at << "\n";
    out << "az_outage_repair_time = " << fault.az_outage_repair_time << "\n";
    out << "ha_restart_delay = " << fault.ha_restart_delay << "\n";
    out << "ha_retry_backoff = " << fault.ha_retry_backoff << "\n";
    out << "ha_max_restart_attempts = " << fault.ha_max_restart_attempts
        << "\n";
    out << "crash_repair_time = " << fault.crash_repair_time << "\n";
    out << "\n[backpressure]\n";
    out << "mode = " << to_string(cfg.backpressure.mode) << "\n";
    out << "queue_capacity = " << cfg.backpressure.queue_capacity << "\n";
    out << "queue_deadline = " << cfg.backpressure.queue_deadline << "\n";
    out << "\n[invariants]\n";
    out << "admission_accounting = " << boolean(inv.admission_accounting)
        << "\n";
    out << "no_silent_drops = " << boolean(inv.no_silent_drops) << "\n";
    out << "conservation = " << boolean(inv.conservation) << "\n";
    out << "no_blackhole = " << boolean(inv.no_blackhole) << "\n";
    out << "backpressure_stability = " << boolean(inv.backpressure_stability)
        << "\n";
    if (inv.flapping_max_moves_per_vm_day.has_value()) {
        out << "flapping_max_moves_per_vm_day = "
            << *inv.flapping_max_moves_per_vm_day << "\n";
    }
    if (inv.imbalance_epsilon.has_value()) {
        out << "imbalance_epsilon = " << format_double(*inv.imbalance_epsilon)
            << "\n";
    }
    if (inv.recovery_p99_seconds.has_value()) {
        out << "recovery_p99_seconds = "
            << format_double(*inv.recovery_p99_seconds) << "\n";
    }
    out << "cross_region_conservation = "
        << boolean(inv.cross_region_conservation) << "\n";
    out << "restore_bit_identity = " << boolean(inv.restore_bit_identity)
        << "\n";
    if (spec.snapshot_at.has_value()) {
        out << "\n[snapshot]\n";
        out << "at = " << *spec.snapshot_at << "\n";
    }
    for (const region_override& region : spec.regions) {
        out << "\n[region." << region.index << "]\n";
        if (!region.name.empty()) out << "name = " << region.name << "\n";
        if (region.scale.has_value()) {
            out << "scale = " << format_double(*region.scale) << "\n";
        }
        if (region.seed.has_value()) out << "seed = " << *region.seed << "\n";
        if (region.daily_churn_fraction.has_value()) {
            out << "daily_churn_fraction = "
                << format_double(*region.daily_churn_fraction) << "\n";
        }
        if (region.crash_rate_per_day.has_value()) {
            out << "crash_rate_per_day = "
                << format_double(*region.crash_rate_per_day) << "\n";
        }
        if (region.migration_abort_probability.has_value()) {
            out << "migration_abort_probability = "
                << format_double(*region.migration_abort_probability) << "\n";
        }
        if (region.az_outages.has_value()) {
            out << "az_outages = " << *region.az_outages << "\n";
        }
        if (region.az_outage_at.has_value()) {
            out << "az_outage_at = " << *region.az_outage_at << "\n";
        }
        if (region.az_outage_repair_time.has_value()) {
            out << "az_outage_repair_time = " << *region.az_outage_repair_time
                << "\n";
        }
    }
    if (!spec.trace.empty()) {
        out << "\n[replay]\n";
        out << "trace = " << spec.trace.generic_string() << "\n";
    }
    return out.str();
}

scenario_spec load_scenario_file(const std::filesystem::path& file) {
    std::ifstream in(file);
    if (!in.good()) {
        throw not_found_error("load_scenario_file: cannot read " +
                              file.string());
    }
    std::ostringstream text;
    text << in.rdbuf();
    scenario_spec spec;
    try {
        spec = parse_scenario(text.str());
    } catch (const error& e) {
        throw error(file.string() + ": " + e.what());
    }
    if (!spec.trace.empty() && spec.trace.is_relative()) {
        spec.trace = file.parent_path() / spec.trace;
    }
    return spec;
}

}  // namespace sci::harness
