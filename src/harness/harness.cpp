#include "harness/harness.hpp"

#include <algorithm>
#include <bit>
#include <fstream>
#include <memory>
#include <sstream>

#include "multiregion/region_set.hpp"
#include "simcore/error.hpp"
#include "snapshot/snapshot.hpp"

namespace sci::harness {

namespace {

constexpr std::uint64_t fnv_offset = 1469598103934665603ull;
constexpr std::uint64_t fnv_prime = 1099511628211ull;

void fnv1a(std::uint64_t& h, std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
        h ^= (value >> (byte * 8)) & 0xffu;
        h *= fnv_prime;
    }
}

void fnv1a(std::uint64_t& h, double value) {
    fnv1a(h, std::bit_cast<std::uint64_t>(value));
}

std::string hex64(std::uint64_t value) {
    static constexpr char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xfu];
        value >>= 4;
    }
    return out;
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static constexpr char digits[] = "0123456789abcdef";
                    out += "\\u00";
                    out += digits[(c >> 4) & 0xf];
                    out += digits[c & 0xf];
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

std::string_view to_string(replay_status s) {
    switch (s) {
        case replay_status::none: return "none";
        case replay_status::recorded: return "recorded";
        case replay_status::matched: return "matched";
        case replay_status::mismatched: return "mismatched";
        case replay_status::skipped: return "skipped";
    }
    return "unknown";
}

bool scenario_outcome::passed() const {
    if (replay == replay_status::mismatched) return false;
    return std::all_of(invariants.begin(), invariants.end(),
                       [](const invariant_result& r) { return r.passed; });
}

std::uint64_t stats_fingerprint(const run_stats& s) {
    std::uint64_t h = fnv_offset;
    fnv1a(h, s.placements);
    fnv1a(h, s.placement_failures);
    fnv1a(h, s.scheduler_retries);
    fnv1a(h, s.drs_migrations);
    fnv1a(h, s.evacuations);
    fnv1a(h, s.forced_fits);
    fnv1a(h, s.holistic_claim_rejections);
    fnv1a(h, s.deletions);
    fnv1a(h, s.scrapes);
    fnv1a(h, s.cross_bb_moves);
    fnv1a(h, s.resizes);
    fnv1a(h, s.resize_failures);
    fnv1a(h, s.migration_seconds);
    fnv1a(h, s.max_migration_downtime_ms);
    fnv1a(h, s.speculative_placements);
    fnv1a(h, s.speculation_misses);
    fnv1a(h, s.window_batches);
    fnv1a(h, s.window_speculations);
    fnv1a(h, s.window_speculative_placements);
    fnv1a(h, s.window_speculation_misses);
    fnv1a(h, s.window_speculation_invalidated);
    fnv1a(h, s.recovery_batches);
    fnv1a(h, s.recovery_speculations);
    fnv1a(h, s.recovery_speculative_placements);
    fnv1a(h, s.recovery_speculation_misses);
    fnv1a(h, s.recovery_speculation_invalidated);
    fnv1a(h, s.recovery_speculation_cancelled);
    fnv1a(h, s.rebalance_target_speculations);
    fnv1a(h, s.rebalance_targets_used);
    fnv1a(h, s.rebalance_target_invalidated);
    fnv1a(h, s.az_outages);
    fnv1a(h, s.host_crashes);
    fnv1a(h, s.crash_victims);
    fnv1a(h, s.ha_restarts);
    fnv1a(h, s.ha_restart_failures);
    fnv1a(h, s.migration_aborts);
    fnv1a(h, s.maintenance_evacuations);
    fnv1a(h, s.wasted_migration_seconds);
    fnv1a(h, s.bp_enqueued);
    fnv1a(h, s.bp_queue_placed);
    fnv1a(h, s.bp_shed_deadline);
    fnv1a(h, s.bp_shed_queue_full);
    fnv1a(h, s.bp_shed_evicted);
    fnv1a(h, s.bp_cancelled);
    fnv1a(h, s.bp_regime_transitions);
    fnv1a(h, s.bp_peak_queue_len);
    fnv1a(h, s.ha_give_ups);
    return h;
}

std::uint64_t events_fingerprint(const event_log& events) {
    std::uint64_t h = fnv_offset;
    for (const lifecycle_event& e : events.all()) {
        fnv1a(h, static_cast<std::uint64_t>(e.t));
        fnv1a(h, static_cast<std::uint64_t>(e.kind));
        fnv1a(h, static_cast<std::uint64_t>(e.vm.value()));
        fnv1a(h, static_cast<std::uint64_t>(e.bb.value()));
        fnv1a(h, static_cast<std::uint64_t>(e.from.value()));
        fnv1a(h, static_cast<std::uint64_t>(e.to.value()));
        fnv1a(h, static_cast<std::uint64_t>(e.reason));
    }
    return h;
}

void write_trace_file(const trace_record& trace,
                      const std::filesystem::path& file) {
    if (!file.parent_path().empty()) {
        std::filesystem::create_directories(file.parent_path());
    }
    std::ofstream out(file);
    expects(out.good(), "write_trace_file: cannot create " + file.string());
    out << "scenario = " << trace.scenario << "\n"
        << "days = " << trace.days << "\n"
        << "events = " << trace.event_count << "\n"
        << "events_hash = " << hex64(trace.events_hash) << "\n"
        << "stats_hash = " << hex64(trace.stats_hash) << "\n";
}

std::optional<trace_record> read_trace_file(
    const std::filesystem::path& file) {
    std::ifstream in(file);
    if (!in.good()) return std::nullopt;
    trace_record trace;
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos) continue;
        const auto trim = [](std::string s) {
            const auto b = s.find_first_not_of(" \t\r");
            const auto e = s.find_last_not_of(" \t\r");
            return b == std::string::npos ? std::string()
                                          : s.substr(b, e - b + 1);
        };
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key == "scenario") trace.scenario = value;
        else if (key == "days") trace.days = std::stoi(value);
        else if (key == "events") trace.event_count = std::stoull(value);
        else if (key == "events_hash") {
            trace.events_hash = std::stoull(value, nullptr, 16);
        } else if (key == "stats_hash") {
            trace.stats_hash = std::stoull(value, nullptr, 16);
        } else {
            throw error("read_trace_file: unknown key '" + key + "' in " +
                        file.string());
        }
    }
    if (trace.scenario.empty()) {
        throw error("read_trace_file: malformed trace " + file.string());
    }
    return trace;
}

namespace {

/// Resolve the restore_bit_identity barrier: the [snapshot] at value,
/// else mid-window.  Returns a skip note instead of a barrier when the
/// point falls outside the (possibly day-capped) window — a capped CI
/// run must not fail a scenario whose barrier sits past the cap.
std::optional<sim_time> restore_barrier(const scenario_spec& spec,
                                        sim_time window_end,
                                        std::string& skip_note) {
    const sim_time at = spec.snapshot_at.value_or(window_end / 2);
    if (at <= 0 || at >= window_end) {
        skip_note = "skipped: snapshot barrier t=" + std::to_string(at) +
                    "s falls outside the " +
                    std::to_string(window_end) + "s window";
        return std::nullopt;
    }
    return at;
}

invariant_result restore_identity_result(sim_time at, std::uint64_t events,
                                         std::uint64_t stats,
                                         const scenario_outcome& outcome) {
    if (events != outcome.events_hash || stats != outcome.stats_hash) {
        return invariant_result{
            "restore_bit_identity", false,
            "restored run diverged: events/stats " + hex64(events) + "/" +
                hex64(stats) + " vs uninterrupted " +
                hex64(outcome.events_hash) + "/" +
                hex64(outcome.stats_hash)};
    }
    return invariant_result{
        "restore_bit_identity", true,
        "snapshot at t=" + std::to_string(at) +
            "s -> codec round-trip -> restore -> replay is bit-identical"};
}

/// Multi-region run: one engine per [region.N] on a shared pool, one
/// invariant_monitor per region, plus the fleet-wide cross-region
/// conservation check.  Combined fingerprints chain the per-region
/// hashes in region order — each region's hash is bit-identical to its
/// solo run, so the chain is too.
void run_multi_region(const scenario_spec& spec, const run_options& options,
                      scenario_outcome& outcome) {
    region_set set(region_specs_of(spec), options.threads);

    // cross_region_conservation and restore_bit_identity are fleet-wide
    // checks evaluated below over all regions at once; the per-region
    // monitors run the rest.
    invariant_config per_region = spec.invariants;
    per_region.cross_region_conservation = false;
    per_region.restore_bit_identity = false;
    std::vector<std::unique_ptr<invariant_monitor>> monitors;
    monitors.reserve(set.region_count());
    for (std::size_t r = 0; r < set.region_count(); ++r) {
        monitors.push_back(std::make_unique<invariant_monitor>(
            set.region(r), per_region, options.watch));
    }

    set.setup();
    const sim_time window_end = days(outcome.days);
    std::string skip_note;
    std::optional<sim_time> barrier;
    std::vector<snapshot::engine_state> mid;
    if (spec.invariants.restore_bit_identity) {
        barrier = restore_barrier(spec, window_end, skip_note);
        if (barrier.has_value()) {
            // one event-time barrier snapshots all N regions at once
            set.run_until(*barrier);
            mid = snapshot::capture(set);
        }
    }
    set.run_until(window_end);

    outcome.stats = set.merged_stats();
    outcome.stats_hash = fnv_offset;
    outcome.events_hash = fnv_offset;
    for (std::size_t r = 0; r < set.region_count(); ++r) {
        const sim_engine& engine = set.region(r);
        outcome.event_count += engine.events().size();
        fnv1a(outcome.events_hash, events_fingerprint(engine.events()));
        fnv1a(outcome.stats_hash, stats_fingerprint(engine.stats()));
        for (invariant_result result : monitors[r]->evaluate()) {
            result.name = set.spec(r).name + "." + result.name;
            outcome.invariants.push_back(std::move(result));
        }
    }
    if (spec.invariants.cross_region_conservation) {
        std::vector<conservation_snapshot> snapshots;
        snapshots.reserve(set.region_count());
        for (std::size_t r = 0; r < set.region_count(); ++r) {
            snapshots.push_back(collect_conservation(set.region(r)));
        }
        outcome.invariants.push_back(
            check_cross_region_conservation(snapshots));
    }
    if (spec.invariants.restore_bit_identity) {
        if (!barrier.has_value()) {
            outcome.invariants.push_back(
                invariant_result{"restore_bit_identity", true, skip_note});
        } else {
            // full byte-codec round trip per region, then replay the
            // restored bundle and chain its hashes the same way
            std::vector<snapshot::engine_state> decoded;
            decoded.reserve(mid.size());
            for (const snapshot::engine_state& state : mid) {
                decoded.push_back(
                    snapshot::deserialize(snapshot::serialize(state)));
            }
            const std::unique_ptr<region_set> replay =
                snapshot::restore_regions(decoded, options.threads);
            replay->run_until(window_end);
            std::uint64_t events = fnv_offset;
            std::uint64_t stats = fnv_offset;
            for (std::size_t r = 0; r < replay->region_count(); ++r) {
                fnv1a(events,
                      events_fingerprint(replay->region(r).events()));
                fnv1a(stats, stats_fingerprint(replay->region(r).stats()));
            }
            outcome.invariants.push_back(
                restore_identity_result(*barrier, events, stats, outcome));
        }
    }
}

}  // namespace

scenario_outcome run_scenario(const scenario_spec& spec,
                              const run_options& options) {
    expects(options.days >= 0, "run_scenario: days must be non-negative");

    scenario_outcome outcome;
    outcome.name = spec.name;
    outcome.days = options.days > 0 ? std::min(options.days, observation_days)
                                    : observation_days;

    if (!spec.regions.empty()) {
        run_multi_region(spec, options, outcome);
    } else {
        engine_config config = spec.config;
        if (options.threads.has_value()) config.threads = options.threads;

        sim_engine engine(config);
        invariant_monitor monitor(engine, spec.invariants, options.watch);
        engine.setup();

        const sim_time window_end = days(outcome.days);
        std::string skip_note;
        std::optional<sim_time> barrier;
        std::optional<snapshot::engine_state> mid;
        if (spec.invariants.restore_bit_identity) {
            barrier = restore_barrier(spec, window_end, skip_note);
            if (barrier.has_value()) {
                engine.run_until(*barrier);
                mid = snapshot::capture(engine);
            }
        }
        engine.run_until(window_end);

        outcome.stats = engine.stats();
        outcome.invariants = monitor.evaluate();
        outcome.event_count = engine.events().size();
        outcome.events_hash = events_fingerprint(engine.events());
        outcome.stats_hash = stats_fingerprint(engine.stats());

        if (spec.invariants.restore_bit_identity) {
            if (!barrier.has_value()) {
                outcome.invariants.push_back(invariant_result{
                    "restore_bit_identity", true, skip_note});
            } else {
                // the replayed engine starts from the decoded bytes, so
                // one check covers serializer + codec + restore at once
                const snapshot::engine_state decoded =
                    snapshot::deserialize(snapshot::serialize(*mid));
                const std::unique_ptr<sim_engine> replay =
                    snapshot::restore(decoded);
                replay->run_until(window_end);
                outcome.invariants.push_back(restore_identity_result(
                    *barrier, events_fingerprint(replay->events()),
                    stats_fingerprint(replay->stats()), outcome));
            }
        }
    }

    if (spec.trace.empty()) return outcome;
    if (options.record_trace) {
        write_trace_file(trace_record{outcome.name, outcome.days,
                                      outcome.event_count,
                                      outcome.events_hash,
                                      outcome.stats_hash},
                         spec.trace);
        outcome.replay = replay_status::recorded;
        outcome.replay_detail = "trace written to " + spec.trace.string();
        return outcome;
    }
    const std::optional<trace_record> trace = read_trace_file(spec.trace);
    if (!trace.has_value()) {
        outcome.replay = replay_status::skipped;
        outcome.replay_detail =
            "no trace at " + spec.trace.string() + " (run with --record)";
        return outcome;
    }
    if (trace->days != outcome.days) {
        outcome.replay = replay_status::skipped;
        outcome.replay_detail =
            "trace covers " + std::to_string(trace->days) +
            " days, this run " + std::to_string(outcome.days);
        return outcome;
    }
    if (trace->events_hash != outcome.events_hash ||
        trace->stats_hash != outcome.stats_hash ||
        trace->event_count != outcome.event_count) {
        outcome.replay = replay_status::mismatched;
        outcome.replay_detail =
            "recorded events/stats " + hex64(trace->events_hash) + "/" +
            hex64(trace->stats_hash) + " (" +
            std::to_string(trace->event_count) + " events), replay got " +
            hex64(outcome.events_hash) + "/" + hex64(outcome.stats_hash) +
            " (" + std::to_string(outcome.event_count) + ")";
        return outcome;
    }
    outcome.replay = replay_status::matched;
    outcome.replay_detail = std::to_string(outcome.event_count) +
                            " events bit-identical to the recorded trace";
    return outcome;
}

std::string outcomes_json(std::span<const scenario_outcome> outcomes) {
    std::ostringstream out;
    const bool all_passed =
        std::all_of(outcomes.begin(), outcomes.end(),
                    [](const scenario_outcome& o) { return o.passed(); });
    out << "{\n  \"passed\": " << (all_passed ? "true" : "false")
        << ",\n  \"scenarios\": [";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const scenario_outcome& o = outcomes[i];
        out << (i == 0 ? "" : ",") << "\n    {\n";
        out << "      \"name\": \"" << json_escape(o.name) << "\",\n";
        out << "      \"passed\": " << (o.passed() ? "true" : "false")
            << ",\n";
        out << "      \"days\": " << o.days << ",\n";
        out << "      \"events\": " << o.event_count << ",\n";
        out << "      \"events_hash\": \"" << hex64(o.events_hash) << "\",\n";
        out << "      \"stats_hash\": \"" << hex64(o.stats_hash) << "\",\n";
        out << "      \"replay\": \"" << to_string(o.replay) << "\",\n";
        out << "      \"replay_detail\": \"" << json_escape(o.replay_detail)
            << "\",\n";
        out << "      \"invariants\": [";
        for (std::size_t j = 0; j < o.invariants.size(); ++j) {
            const invariant_result& r = o.invariants[j];
            out << (j == 0 ? "" : ",") << "\n        {\"name\": \""
                << json_escape(r.name) << "\", \"passed\": "
                << (r.passed ? "true" : "false") << ", \"skipped\": "
                << (r.skipped ? "true" : "false") << ", \"detail\": \""
                << json_escape(r.detail) << "\"}";
        }
        out << (o.invariants.empty() ? "]" : "\n      ]") << "\n    }";
    }
    out << (outcomes.empty() ? "]" : "\n  ]") << "\n}\n";
    return out.str();
}

}  // namespace sci::harness
