#pragma once

// sci::harness — the scenario DSL (*.scn).
//
// A scenario is a small dependency-free text file: '#' comments,
// [section] headers, and key = value lines.  It compiles into the
// existing engine_config (scenario + population + fault nested inside),
// plus the invariants the run must satisfy and an optional replay trace:
//
//   [scenario]
//   name = az_outage
//   description = lose one availability zone, recover through HA
//
//   [engine]
//   scale = 0.03
//   seed = 42
//   daily_churn_fraction = 0.018
//
//   [fault]
//   az_outages = 1
//   az_outage_at = 21600
//
//   [invariants]
//   admission_accounting = true
//   conservation = true
//   recovery_p99_seconds = 7200
//   restore_bit_identity = true
//
//   [snapshot]
//   at = 43200          # barrier for restore_bit_identity (default: mid-window)
//
//   [replay]
//   trace = traces/az_outage.trace
//
// Unknown sections or keys are errors (with the line number) — a typo'd
// knob must not silently run the default physics.  render_scenario emits
// the canonical form; parse(render(parse(x))) == parse(x) byte for byte,
// which tests/harness_test.cpp pins.
//
// Multi-region scenarios add `[region.N]` sections: one scenario file
// declares N regions, each the base [engine]/[fault] config plus the
// section's per-region deltas.  A region's seed defaults to
// derive_region_seed(base seed, N) and may be overridden explicitly:
//
//   [region.0]
//   name = steady
//
//   [region.1]
//   name = churn_storm
//   daily_churn_fraction = 0.25
//
// Deliberately NOT in the DSL: `threads` (runtime concern — SCI_THREADS;
// a scenario's output is bit-identical at any worker count) and
// `initial_population` (derived from scale, like every fleet dimension).

#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.hpp"
#include "harness/invariants.hpp"
#include "multiregion/region_set.hpp"

namespace sci::harness {

/// One [region.N] section: deltas this region applies on top of the base
/// [engine]/[fault] config.  Unset keys inherit the base scenario.
struct region_override {
    std::size_t index = 0;
    /// Export/diagnostic name; defaults to "region<index>".
    std::string name;
    std::optional<double> scale;
    /// Explicit master seed; defaults to derive_region_seed(base, index).
    std::optional<std::uint64_t> seed;
    std::optional<double> daily_churn_fraction;
    std::optional<double> crash_rate_per_day;
    std::optional<double> migration_abort_probability;
    std::optional<int> az_outages;
    std::optional<sim_duration> az_outage_at;
    std::optional<sim_duration> az_outage_repair_time;
};

/// A parsed scenario: what to run and what must hold.
struct scenario_spec {
    std::string name;
    std::string description;
    engine_config config;
    invariant_config invariants;
    /// Declared [region.N] sections in index order; empty = single-region
    /// scenario run through a plain sim_engine.
    std::vector<region_override> regions;
    /// [snapshot] at = <seconds>: the event-time barrier where the
    /// restore_bit_identity invariant snapshots the run (and where
    /// tooling defaults its checkpoint).  Unset = mid-window.  For
    /// multi-region scenarios the one barrier covers every region.
    std::optional<sim_duration> snapshot_at;
    /// Replay trace path ([replay] trace = ...); empty when absent.
    /// Relative to the .scn file's directory — load_scenario_file
    /// resolves it, parse_scenario keeps it verbatim.
    std::filesystem::path trace;
};

/// Expand a spec into one region_spec per declared [region.N] (a spec
/// without regions yields one region carrying the base config verbatim —
/// derive_region_seed(seed, 0) == seed, so the solo run is unchanged).
/// Region names must be unique: they become export subdirectories.
std::vector<region_spec> region_specs_of(const scenario_spec& spec);

/// Parse scenario text; throws sci::error with the offending line number.
scenario_spec parse_scenario(std::string_view text);

/// Canonical text of a spec (parse . render is the identity on specs).
std::string render_scenario(const scenario_spec& spec);

/// Read + parse a .scn file, resolving the trace path against its
/// directory.
scenario_spec load_scenario_file(const std::filesystem::path& file);

}  // namespace sci::harness
