#pragma once

// sci::harness — the scenario DSL (*.scn).
//
// A scenario is a small dependency-free text file: '#' comments,
// [section] headers, and key = value lines.  It compiles into the
// existing engine_config (scenario + population + fault nested inside),
// plus the invariants the run must satisfy and an optional replay trace:
//
//   [scenario]
//   name = az_outage
//   description = lose one availability zone, recover through HA
//
//   [engine]
//   scale = 0.03
//   seed = 42
//   daily_churn_fraction = 0.018
//
//   [fault]
//   az_outages = 1
//   az_outage_at = 21600
//
//   [invariants]
//   admission_accounting = true
//   conservation = true
//   recovery_p99_seconds = 7200
//
//   [replay]
//   trace = traces/az_outage.trace
//
// Unknown sections or keys are errors (with the line number) — a typo'd
// knob must not silently run the default physics.  render_scenario emits
// the canonical form; parse(render(parse(x))) == parse(x) byte for byte,
// which tests/harness_test.cpp pins.
//
// Deliberately NOT in the DSL: `threads` (runtime concern — SCI_THREADS;
// a scenario's output is bit-identical at any worker count) and
// `initial_population` (derived from scale, like every fleet dimension).

#include <filesystem>
#include <string>
#include <string_view>

#include "core/engine.hpp"
#include "harness/invariants.hpp"

namespace sci::harness {

/// A parsed scenario: what to run and what must hold.
struct scenario_spec {
    std::string name;
    std::string description;
    engine_config config;
    invariant_config invariants;
    /// Replay trace path ([replay] trace = ...); empty when absent.
    /// Relative to the .scn file's directory — load_scenario_file
    /// resolves it, parse_scenario keeps it verbatim.
    std::filesystem::path trace;
};

/// Parse scenario text; throws sci::error with the offending line number.
scenario_spec parse_scenario(std::string_view text);

/// Canonical text of a spec (parse . render is the identity on specs).
std::string render_scenario(const scenario_spec& spec);

/// Read + parse a .scn file, resolving the trace path against its
/// directory.
scenario_spec load_scenario_file(const std::filesystem::path& file);

}  // namespace sci::harness
