#include "harness/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "core/engine.hpp"
#include "fault/ha.hpp"
#include "simcore/error.hpp"

namespace sci::harness {

namespace {

invariant_result pass(std::string name, std::string detail) {
    return invariant_result{std::move(name), true, std::move(detail)};
}

invariant_result fail(std::string name, std::string detail) {
    return invariant_result{std::move(name), false, std::move(detail)};
}

/// VMs currently held by the HA controller or the backpressure queue:
/// their unterminated states are in flight, not dropped.
std::vector<vm_id> collect_in_flight(const sim_engine& engine) {
    std::vector<vm_id> out;
    if (const ha_controller* ha = engine.ha(); ha != nullptr) {
        for (const ha_controller::pending_row& row : ha->pending_table()) {
            out.push_back(row.vm);
        }
    }
    if (const backpressure_controller* bp = engine.backpressure();
        bp != nullptr) {
        for (std::size_t i = 0; i < bp->size(); ++i) {
            out.push_back(bp->at(i).vm);
        }
    }
    return out;
}

}  // namespace

invariant_result check_admission_accounting(const run_stats& stats,
                                            const event_log& events) {
    const std::string name = "admission_accounting";
    const auto creates = events.count(lifecycle_event_kind::create);
    const auto restarts = events.count(lifecycle_event_kind::ha_restart);
    const auto fails = events.count(lifecycle_event_kind::schedule_fail);
    std::uint64_t missing_reason = 0;
    std::uint64_t holistic_rejects = 0;
    for (const lifecycle_event& e : events.all()) {
        if (e.kind != lifecycle_event_kind::schedule_fail) continue;
        if (e.reason == schedule_fail_reason::none) ++missing_reason;
        if (e.reason == schedule_fail_reason::holistic_claim_rejected) {
            ++holistic_rejects;
        }
    }
    std::ostringstream out;
    if (stats.placements != creates + restarts) {
        out << "placements (" << stats.placements << ") != create events ("
            << creates << ") + ha_restart events (" << restarts << ")";
        return fail(name, out.str());
    }
    if (stats.placement_failures != fails) {
        out << "placement_failures (" << stats.placement_failures
            << ") != schedule_fail events (" << fails << ")";
        return fail(name, out.str());
    }
    if (stats.holistic_claim_rejections > stats.placement_failures) {
        out << "holistic_claim_rejections ("
            << stats.holistic_claim_rejections
            << ") exceed placement_failures (" << stats.placement_failures
            << ")";
        return fail(name, out.str());
    }
    if (missing_reason > 0) {
        out << missing_reason << " schedule_fail events carry no reason";
        return fail(name, out.str());
    }
    if (holistic_rejects != stats.holistic_claim_rejections) {
        out << "holistic_claim_rejected events (" << holistic_rejects
            << ") != stats.holistic_claim_rejections ("
            << stats.holistic_claim_rejections << ")";
        return fail(name, out.str());
    }
    out << stats.placements << " placements = " << creates << " creates + "
        << restarts << " ha_restarts; " << fails
        << " explicit rejections, all with reasons";
    return pass(name, out.str());
}

invariant_result check_no_silent_drops(std::span<const vm_record> records,
                                       const event_log& events,
                                       std::span<const vm_id> in_flight) {
    const std::string name = "no_silent_drops";
    struct vm_flags {
        bool failed = false, crashed = false, removed = false, placed = false,
             shed = false;
    };
    std::unordered_map<std::int32_t, vm_flags> flags;
    flags.reserve(records.size());
    for (const lifecycle_event& e : events.all()) {
        vm_flags& f = flags[e.vm.value()];
        switch (e.kind) {
            case lifecycle_event_kind::schedule_fail: f.failed = true; break;
            case lifecycle_event_kind::crash: f.crashed = true; break;
            case lifecycle_event_kind::remove: f.removed = true; break;
            case lifecycle_event_kind::create:
            case lifecycle_event_kind::ha_restart: f.placed = true; break;
            case lifecycle_event_kind::shed: f.shed = true; break;
            default: break;
        }
    }
    std::unordered_set<std::int32_t> in_flight_set;
    in_flight_set.reserve(in_flight.size());
    for (const vm_id vm : in_flight) in_flight_set.insert(vm.value());
    std::uint64_t violations = 0;
    std::ostringstream first;
    const auto violate = [&](const vm_record& rec, const char* what) {
        if (violations == 0) {
            first << "vm " << rec.id.value() << " is " << to_string(rec.state)
                  << " but has no " << what << " event";
        }
        ++violations;
    };
    for (const vm_record& rec : records) {
        const auto it = flags.find(rec.id.value());
        const vm_flags f = it == flags.end() ? vm_flags{} : it->second;
        switch (rec.state) {
            case vm_state::error:
                if (!f.failed && !f.shed) {
                    violate(rec, "schedule_fail/shed");
                } else if (f.crashed && !f.shed &&
                           !in_flight_set.contains(rec.id.value())) {
                    // A crash victim stuck in error with no terminal shed
                    // and no pending HA/backpressure entry is the silent
                    // give-up this audit exists to catch: its failed
                    // restart *attempts* logged schedule_fails, but the
                    // abandonment itself vanished.
                    violate(rec, "shed");
                }
                break;
            case vm_state::pending:
                // A pending VM with no events at all was never admitted
                // (its planned arrival lies beyond a truncated window).
                // Once admitted, pending means a crash victim awaiting
                // HA; anything else fell through the cracks.
                if (it == flags.end()) break;
                if (!f.crashed) violate(rec, "crash");
                break;
            case vm_state::deleted:
                if (!f.removed) violate(rec, "remove");
                break;
            case vm_state::active:
                if (!f.placed) violate(rec, "create/ha_restart");
                break;
        }
    }
    if (violations > 0) {
        std::ostringstream out;
        out << violations << " unexplained VM states; first: " << first.str();
        return fail(name, out.str());
    }
    std::ostringstream out;
    out << records.size() << " VM lifecycles fully explained by the log";
    return pass(name, out.str());
}

invariant_result check_bounded_flapping(const event_log& events,
                                        int max_moves_per_vm_day) {
    expects(max_moves_per_vm_day >= 0,
            "check_bounded_flapping: bound must be non-negative");
    const std::string name = "bounded_flapping";
    struct day_count {
        std::int64_t day = -1;
        int count = 0;
    };
    std::unordered_map<std::int32_t, day_count> per_vm;
    std::int32_t worst_vm = -1;
    std::int64_t worst_day = -1;
    int worst = 0;
    for (const lifecycle_event& e : events.all()) {
        if (e.kind != lifecycle_event_kind::migrate) continue;
        day_count& dc = per_vm[e.vm.value()];
        const std::int64_t day = day_index(e.t);
        if (dc.day != day) {
            dc.day = day;
            dc.count = 0;
        }
        ++dc.count;
        if (dc.count > worst) {
            worst = dc.count;
            worst_vm = e.vm.value();
            worst_day = day;
        }
    }
    std::ostringstream out;
    if (worst > max_moves_per_vm_day) {
        out << "vm " << worst_vm << " migrated " << worst << " times on day "
            << worst_day << " (bound " << max_moves_per_vm_day << ")";
        return fail(name, out.str());
    }
    out << "worst VM saw " << worst << " migrations in a day (bound "
        << max_moves_per_vm_day << ")";
    return pass(name, out.str());
}

invariant_result check_monotone_imbalance(
    std::span<const imbalance_sample> samples, double epsilon) {
    expects(epsilon >= 0.0,
            "check_monotone_imbalance: epsilon must be non-negative");
    const std::string name = "monotone_imbalance";
    const imbalance_sample* worst = nullptr;
    double worst_excess = 0.0;
    for (const imbalance_sample& s : samples) {
        const double excess = s.after - (s.before + epsilon);
        if (excess > worst_excess) {
            worst_excess = excess;
            worst = &s;
        }
    }
    std::ostringstream out;
    if (worst != nullptr) {
        out << "DRS pass at t=" << worst->t << " worsened imbalance "
            << worst->before << " -> " << worst->after << " (epsilon "
            << epsilon << ")";
        return fail(name, out.str());
    }
    out << samples.size() << " DRS passes, none worsened imbalance beyond "
        << epsilon;
    return pass(name, out.str());
}

invariant_result check_recovery_tail(std::span<const double> downtime_seconds,
                                     double p99_limit_seconds) {
    expects(p99_limit_seconds > 0.0,
            "check_recovery_tail: limit must be positive");
    const std::string name = "recovery_tail";
    if (downtime_seconds.empty()) {
        // No distribution to judge: an explicit skip, not an implicit
        // pass (`passed` stays true so gates don't trip on fault-free
        // runs, but sciverify reports the verdict as "skip").
        invariant_result result = pass(name, "skipped: no HA recoveries observed");
        result.skipped = true;
        return result;
    }
    std::vector<double> sorted(downtime_seconds.begin(),
                               downtime_seconds.end());
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(std::ceil(
                          0.99 * static_cast<double>(sorted.size()))) -
                      1;
    const double p99 = sorted[rank];
    std::ostringstream out;
    out << "downtime p99 " << p99 << " s over " << sorted.size()
        << " recoveries (limit " << p99_limit_seconds << " s)";
    if (p99 > p99_limit_seconds) return fail(name, out.str());
    return pass(name, out.str());
}

invariant_result check_no_blackhole(const run_stats& stats,
                                    const event_log& events,
                                    std::uint64_t still_queued) {
    const std::string name = "no_blackhole";
    std::ostringstream out;
    const std::uint64_t terminated = stats.bp_queue_placed +
                                     stats.bp_shed_deadline +
                                     stats.bp_shed_evicted + stats.bp_cancelled;
    if (stats.bp_enqueued != terminated + still_queued) {
        out << "bp_enqueued (" << stats.bp_enqueued << ") != placed ("
            << stats.bp_queue_placed << ") + shed-deadline ("
            << stats.bp_shed_deadline << ") + evicted ("
            << stats.bp_shed_evicted << ") + cancelled (" << stats.bp_cancelled
            << ") + still queued (" << still_queued << ")";
        return fail(name, out.str());
    }
    const auto sheds = events.count(lifecycle_event_kind::shed);
    const std::uint64_t expected_sheds =
        stats.bp_shed_deadline + stats.bp_shed_queue_full +
        stats.bp_shed_evicted + stats.ha_give_ups;
    if (sheds != expected_sheds) {
        out << "shed events (" << sheds << ") != bp_shed_deadline ("
            << stats.bp_shed_deadline << ") + bp_shed_queue_full ("
            << stats.bp_shed_queue_full << ") + bp_shed_evicted ("
            << stats.bp_shed_evicted << ") + ha_give_ups ("
            << stats.ha_give_ups << ")";
        return fail(name, out.str());
    }
    std::uint64_t missing_reason = 0;
    for (const lifecycle_event& e : events.all()) {
        if (e.kind == lifecycle_event_kind::shed &&
            e.reason == schedule_fail_reason::none) {
            ++missing_reason;
        }
    }
    if (missing_reason > 0) {
        out << missing_reason << " shed events carry no reason";
        return fail(name, out.str());
    }
    out << stats.bp_enqueued << " queued requests terminated exactly once ("
        << still_queued << " still queued); " << sheds
        << " sheds, all with reasons";
    return pass(name, out.str());
}

invariant_result check_backpressure_stability(
    std::span<const sim_time> transitions, sim_duration min_gap) {
    expects(min_gap > 0,
            "check_backpressure_stability: min_gap must be positive");
    const std::string name = "backpressure_stability";
    std::ostringstream out;
    for (std::size_t i = 1; i < transitions.size(); ++i) {
        const sim_duration gap = transitions[i] - transitions[i - 1];
        if (gap < min_gap) {
            out << "regime flapped: transitions at t=" << transitions[i - 1]
                << " and t=" << transitions[i] << " are " << gap
                << " s apart (min " << min_gap << " s)";
            return fail(name, out.str());
        }
    }
    out << transitions.size() << " regime transitions, all at least "
        << min_gap << " s apart";
    return pass(name, out.str());
}

conservation_snapshot collect_conservation(const sim_engine& engine) {
    conservation_snapshot snap;
    const fleet& f = engine.infrastructure();
    snap.bbs.resize(f.bb_count());
    for (const building_block& bb : f.bbs()) {
        bb_usage_row& row = snap.bbs[static_cast<std::size_t>(bb.id.value())];
        row.bb = bb.id;
        const provider_usage& use = engine.placement().usage(bb.id);
        row.claimed_vcpus = static_cast<std::int64_t>(use.vcpus_used);
        row.claimed_ram_mib = static_cast<std::int64_t>(use.ram_used_mib);
        row.claimed_instances = static_cast<std::int64_t>(use.instances);
    }
    for (const drs_cluster& cluster : engine.clusters()) {
        bb_usage_row& row =
            snap.bbs[static_cast<std::size_t>(cluster.bb().value())];
        for (const node_runtime& nr : cluster.nodes()) {
            row.resident_vcpus +=
                static_cast<std::int64_t>(nr.reserved_vcpus());
            row.resident_ram_mib +=
                static_cast<std::int64_t>(nr.reserved_ram_mib());
            row.resident_instances +=
                static_cast<std::int64_t>(nr.residents().size());
            if (engine.node_is_down(nr.id()) && !nr.residents().empty()) {
                snap.down_nodes_with_residents.push_back(nr.id());
            }
        }
    }
    for (const vm_record& rec : engine.vms().all()) {
        if (rec.state != vm_state::active) continue;
        const flavor& fl = engine.catalog().get(rec.flavor);
        bb_usage_row& row =
            snap.bbs[static_cast<std::size_t>(rec.placed_bb.value())];
        row.registry_vcpus += fl.vcpus;
        row.registry_ram_mib += static_cast<std::int64_t>(fl.ram_mib);
        row.registry_instances += 1;
    }
    return snap;
}

invariant_result check_conservation(const conservation_snapshot& snapshot) {
    const std::string name = "conservation";
    std::ostringstream out;
    if (!snapshot.down_nodes_with_residents.empty()) {
        out << snapshot.down_nodes_with_residents.size()
            << " downed hosts still carry residents; first: node "
            << snapshot.down_nodes_with_residents.front().value() << " at t="
            << snapshot.t;
        return fail(name, out.str());
    }
    for (const bb_usage_row& row : snapshot.bbs) {
        const auto mismatch = [&](const char* what, std::int64_t claimed,
                                  std::int64_t resident,
                                  std::int64_t registry) {
            out << "bb " << row.bb.value() << " " << what
                << " disagree at t=" << snapshot.t << ": claimed " << claimed
                << ", resident " << resident << ", registry " << registry;
            return fail(name, out.str());
        };
        if (row.claimed_vcpus != row.resident_vcpus ||
            row.claimed_vcpus != row.registry_vcpus) {
            return mismatch("vcpus", row.claimed_vcpus, row.resident_vcpus,
                            row.registry_vcpus);
        }
        if (row.claimed_ram_mib != row.resident_ram_mib ||
            row.claimed_ram_mib != row.registry_ram_mib) {
            return mismatch("ram_mib", row.claimed_ram_mib,
                            row.resident_ram_mib, row.registry_ram_mib);
        }
        if (row.claimed_instances != row.resident_instances ||
            row.claimed_instances != row.registry_instances) {
            return mismatch("instances", row.claimed_instances,
                            row.resident_instances, row.registry_instances);
        }
    }
    out << snapshot.bbs.size()
        << " building blocks balanced (claims = reservations = registry)";
    return pass(name, out.str());
}

invariant_result check_cross_region_conservation(
    std::span<const conservation_snapshot> per_region) {
    const std::string name = "cross_region_conservation";
    std::ostringstream out;
    if (per_region.empty()) {
        return fail(name, "no region snapshots collected");
    }
    std::int64_t claimed_vcpus = 0, resident_vcpus = 0, registry_vcpus = 0;
    std::int64_t claimed_ram = 0, resident_ram = 0, registry_ram = 0;
    std::int64_t claimed_inst = 0, resident_inst = 0, registry_inst = 0;
    std::size_t bbs = 0;
    for (std::size_t r = 0; r < per_region.size(); ++r) {
        const conservation_snapshot& snap = per_region[r];
        if (!snap.down_nodes_with_residents.empty()) {
            out << "region " << r << ": "
                << snap.down_nodes_with_residents.size()
                << " downed hosts still carry residents; first: node "
                << snap.down_nodes_with_residents.front().value()
                << " at t=" << snap.t;
            return fail(name, out.str());
        }
        bbs += snap.bbs.size();
        for (const bb_usage_row& row : snap.bbs) {
            claimed_vcpus += row.claimed_vcpus;
            resident_vcpus += row.resident_vcpus;
            registry_vcpus += row.registry_vcpus;
            claimed_ram += row.claimed_ram_mib;
            resident_ram += row.resident_ram_mib;
            registry_ram += row.registry_ram_mib;
            claimed_inst += row.claimed_instances;
            resident_inst += row.resident_instances;
            registry_inst += row.registry_instances;
        }
    }
    const auto mismatch = [&](const char* what, std::int64_t claimed,
                              std::int64_t resident, std::int64_t registry) {
        out << "fleet-wide " << what << " disagree across "
            << per_region.size() << " regions: claimed " << claimed
            << ", resident " << resident << ", registry " << registry;
        return fail(name, out.str());
    };
    if (claimed_vcpus != resident_vcpus || claimed_vcpus != registry_vcpus) {
        return mismatch("vcpus", claimed_vcpus, resident_vcpus,
                        registry_vcpus);
    }
    if (claimed_ram != resident_ram || claimed_ram != registry_ram) {
        return mismatch("ram_mib", claimed_ram, resident_ram, registry_ram);
    }
    if (claimed_inst != resident_inst || claimed_inst != registry_inst) {
        return mismatch("instances", claimed_inst, resident_inst,
                        registry_inst);
    }
    out << per_region.size() << " regions / " << bbs
        << " building blocks balanced fleet-wide (" << registry_inst
        << " instances)";
    return pass(name, out.str());
}

invariant_monitor::invariant_monitor(sim_engine& engine,
                                     invariant_config config, bool watch)
    : engine_(&engine), config_(config), watch_(watch) {
    engine_probes probes;
    if (config_.imbalance_epsilon.has_value()) {
        probes.drs_imbalance = [this](sim_time t, double before,
                                      double after) {
            imbalance_samples_.push_back(imbalance_sample{t, before, after});
        };
    }
    const bool scrape_checks =
        config_.conservation ||
        (watch_ && (config_.no_silent_drops || config_.no_blackhole ||
                    config_.flapping_max_moves_per_vm_day.has_value()));
    if (scrape_checks) {
        probes.after_scrape = [this](sim_time t) { on_scrape(t); };
    }
    if (probes.after_scrape || probes.drs_imbalance) {
        engine.set_probes(std::move(probes));
    }
}

void invariant_monitor::on_scrape(sim_time t) {
    ++scrapes_seen_;
    if (!live_violation_.empty()) return;  // first violation wins
    const auto record = [&](invariant_result result) {
        if (result.passed || !live_violation_.empty()) return;
        live_violation_name_ = result.name;
        live_violation_ = "t=" + std::to_string(t) + "s: " + result.detail;
    };
    if (config_.conservation &&
        (watch_ || scrapes_seen_ % live_check_every == 0)) {
        ++live_checks_;
        conservation_snapshot snap = collect_conservation(*engine_);
        snap.t = t;
        record(check_conservation(snap));
    }
    if (!watch_) return;
    // Event-log prefix checkers: valid at any scrape barrier because
    // state transitions and their events commit atomically per event.
    if (config_.no_silent_drops) {
        record(check_no_silent_drops(engine_->vms().all(), engine_->events(),
                                     collect_in_flight(*engine_)));
    }
    if (config_.no_blackhole) {
        // The backpressure ledger closes at every scrape barrier: the
        // bp tick (expiry + regime update) ran just before this probe.
        const backpressure_controller* bp = engine_->backpressure();
        record(check_no_blackhole(engine_->stats(), engine_->events(),
                                  bp != nullptr ? bp->size() : 0));
    }
    if (config_.flapping_max_moves_per_vm_day.has_value()) {
        record(check_bounded_flapping(
            engine_->events(), *config_.flapping_max_moves_per_vm_day));
    }
}

std::vector<invariant_result> invariant_monitor::evaluate() const {
    std::vector<invariant_result> results;
    // A live (in-run) violation of this checker trumps the end-of-run
    // state; a clean final check gets annotated with the live coverage.
    const auto finish = [&](invariant_result result) {
        if (live_violation_name_ == result.name) {
            result.passed = false;
            result.detail = "live: " + live_violation_;
        } else if (result.passed && watch_) {
            result.detail += " (watched over " +
                             std::to_string(scrapes_seen_) + " scrapes)";
        }
        results.push_back(std::move(result));
    };
    if (config_.admission_accounting) {
        results.push_back(check_admission_accounting(engine_->stats(),
                                                     engine_->events()));
    }
    if (config_.no_silent_drops) {
        finish(check_no_silent_drops(engine_->vms().all(), engine_->events(),
                                     collect_in_flight(*engine_)));
    }
    if (config_.no_blackhole) {
        const backpressure_controller* bp = engine_->backpressure();
        finish(check_no_blackhole(engine_->stats(), engine_->events(),
                                  bp != nullptr ? bp->size() : 0));
    }
    if (config_.backpressure_stability) {
        const backpressure_controller* bp = engine_->backpressure();
        results.push_back(check_backpressure_stability(
            bp != nullptr ? std::span<const sim_time>(bp->transitions())
                          : std::span<const sim_time>{},
            engine_->config().sampling_interval));
    }
    if (config_.conservation) {
        conservation_snapshot snap = collect_conservation(*engine_);
        invariant_result result = check_conservation(snap);
        if (result.passed) {
            result.detail += " (" + std::to_string(live_checks_) +
                             " live spot-checks + final)";
        }
        finish(std::move(result));
    }
    if (config_.flapping_max_moves_per_vm_day.has_value()) {
        finish(check_bounded_flapping(
            engine_->events(), *config_.flapping_max_moves_per_vm_day));
    }
    if (config_.imbalance_epsilon.has_value()) {
        results.push_back(check_monotone_imbalance(
            imbalance_samples_, *config_.imbalance_epsilon));
    }
    if (config_.recovery_p99_seconds.has_value()) {
        const ha_controller* ha = engine_->ha();
        results.push_back(check_recovery_tail(
            ha != nullptr ? std::span<const double>(ha->downtime_samples())
                          : std::span<const double>{},
            *config_.recovery_p99_seconds));
    }
    return results;
}

}  // namespace sci::harness
