#pragma once

// sci::harness — machine-checked invariants over a simulation run.
//
// Each checker is a pure function over narrow inputs (run_stats, the
// event log, collected snapshots) so tests can feed deliberately broken
// data and prove the checker actually fails — no vacuously-green checks.
// The invariant_monitor wires the probes into a live engine: it records
// DRS imbalance samples and runs conservation spot-checks while the run
// plays, then evaluates every enabled checker at the end.
//
// The invariants themselves are the "physics" of the reproduced system
// (ROADMAP direction 1, modeled on Continuity's RFC 0006 harness):
//   - admission accounting: every admitted request is placed or explicitly
//     rejected with a reason; holistic claim rejections are a subset of
//     placement failures.
//   - no silent drops: every VM that is in error has a schedule_fail
//     event, every deleted VM a remove event, every down VM a crash event.
//   - bounded flapping: no VM is DRS-migrated more than a bound per day.
//   - monotone imbalance: a DRS pass never leaves its clusters worse than
//     it found them (under the pass's own demand snapshot), up to epsilon.
//   - bounded recovery tail: HA downtime p99 stays under a limit.
//   - conservation: provider claims == node reservations == active
//     registry VMs per building block, and no resident sits on a downed
//     host.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "infra/event_log.hpp"
#include "infra/ids.hpp"
#include "infra/vm.hpp"
#include "simcore/time.hpp"

namespace sci {
struct run_stats;
class sim_engine;
}  // namespace sci

namespace sci::harness {

/// Which invariants a scenario evaluates ([invariants] section of the
/// DSL).  Everything is off by default: a scenario names its physics.
struct invariant_config {
    bool admission_accounting = false;
    bool no_silent_drops = false;
    bool conservation = false;
    /// Backpressure ledger closure: every request that entered the
    /// conductor's queue terminated in exactly one of {placed,
    /// schedule_fail-with-reason, shed-with-reason}.
    bool no_blackhole = false;
    /// Regime transitions (queuing <-> shedding) never flap: consecutive
    /// flips are at least one sampling interval apart.
    bool backpressure_stability = false;
    /// Max DRS migrations of one VM within one day (unset: not checked).
    std::optional<int> flapping_max_moves_per_vm_day;
    /// Per-pass tolerance for imbalance(after) <= imbalance(before) + eps.
    std::optional<double> imbalance_epsilon;
    /// HA downtime p99 bound in seconds (unset: not checked).
    std::optional<double> recovery_p99_seconds;
    /// Fleet-wide conservation across every region of a multi-region
    /// scenario (single-region runs treat it as plain conservation over
    /// the one region).
    bool cross_region_conservation = false;
    /// Snapshot the run at the [snapshot] barrier (default: mid-window),
    /// round-trip the state through the byte codec, restore into a fresh
    /// engine, replay to the end, and require the restored run's
    /// events/stats fingerprints to be bit-identical to the
    /// uninterrupted run's.  Evaluated by run_scenario (it needs the
    /// second run), not by the invariant_monitor.
    bool restore_bit_identity = false;

    /// Number of enabled checkers.
    int count() const {
        return (admission_accounting ? 1 : 0) + (no_silent_drops ? 1 : 0) +
               (conservation ? 1 : 0) + (no_blackhole ? 1 : 0) +
               (backpressure_stability ? 1 : 0) +
               (flapping_max_moves_per_vm_day.has_value() ? 1 : 0) +
               (imbalance_epsilon.has_value() ? 1 : 0) +
               (recovery_p99_seconds.has_value() ? 1 : 0) +
               (cross_region_conservation ? 1 : 0) +
               (restore_bit_identity ? 1 : 0);
    }
};

/// Outcome of one checker.
struct invariant_result {
    std::string name;
    bool passed = true;
    std::string detail;  ///< precise violation (or a short pass note)
    /// True when the checker had no data to judge (e.g. recovery_tail
    /// over zero recoveries): `passed` stays true so gates don't trip,
    /// but sciverify reports the verdict as "skip", not an implicit pass.
    bool skipped = false;
};

/// admitted == placed + explicitly rejected, every rejection carries a
/// reason, and holistic claim rejections are a subset of failures.
invariant_result check_admission_accounting(const run_stats& stats,
                                            const event_log& events);

/// Every terminal/down VM state is explained by a logged event.  A VM in
/// error must carry a schedule_fail or shed event — and a crash victim
/// that ended in error must carry a terminal shed (the HA give-up) unless
/// it is still in flight (`in_flight` = VMs currently pending in the HA
/// controller or waiting in the backpressure queue).
invariant_result check_no_silent_drops(std::span<const vm_record> records,
                                       const event_log& events,
                                       std::span<const vm_id> in_flight = {});

/// Backpressure ledger closure: bp_enqueued == bp_queue_placed +
/// bp_shed_deadline + bp_shed_evicted + bp_cancelled + still_queued,
/// shed events match their counters (queue-full sheds and degrade-mode
/// HA give-ups included), and every shed names a reason.
invariant_result check_no_blackhole(const run_stats& stats,
                                    const event_log& events,
                                    std::uint64_t still_queued);

/// Consecutive regime transitions are at least `min_gap` apart.
invariant_result check_backpressure_stability(
    std::span<const sim_time> transitions, sim_duration min_gap);

/// No VM is DRS-migrated more than `max_moves_per_vm_day` times in a day.
invariant_result check_bounded_flapping(const event_log& events,
                                        int max_moves_per_vm_day);

/// One DRS pass's fleet-mean imbalance, before planning and after commit.
struct imbalance_sample {
    sim_time t = 0;
    double before = 0.0;
    double after = 0.0;
};

/// Every pass satisfies after <= before + epsilon.
invariant_result check_monotone_imbalance(
    std::span<const imbalance_sample> samples, double epsilon);

/// HA downtime p99 (nearest-rank over `downtime_seconds`) <= limit.
invariant_result check_recovery_tail(std::span<const double> downtime_seconds,
                                     double p99_limit_seconds);

/// Per-building-block accounting triangle: what the placement service has
/// claimed, what the cluster's nodes have reserved, and what the active
/// VMs of the registry add up to.
struct bb_usage_row {
    bb_id bb;
    std::int64_t claimed_vcpus = 0, resident_vcpus = 0, registry_vcpus = 0;
    std::int64_t claimed_ram_mib = 0, resident_ram_mib = 0,
                 registry_ram_mib = 0;
    std::int64_t claimed_instances = 0, resident_instances = 0,
                 registry_instances = 0;
};

struct conservation_snapshot {
    sim_time t = 0;
    std::vector<bb_usage_row> bbs;
    /// Out-of-service hosts that still carry residents (must be empty).
    std::vector<node_id> down_nodes_with_residents;
};

/// Snapshot the engine's current accounting state (callable mid-run from
/// a probe or after the run).
conservation_snapshot collect_conservation(const sim_engine& engine);

/// All three usage views agree per BB and no resident sits on a downed
/// host.
invariant_result check_conservation(const conservation_snapshot& snapshot);

/// Fleet-wide conservation over every region of a multi-region run: the
/// summed accounting triangle (claimed == resident == registry, per
/// resource, totalled across all regions' building blocks) must close,
/// and no region may have a resident on a downed host.  The sums make
/// this falsifiable against cross-region bleed: a VM double-counted (or
/// lost) by the aggregation layer breaks the fleet totals even when each
/// region's own triangle still closes.
invariant_result check_cross_region_conservation(
    std::span<const conservation_snapshot> per_region);

/// Wires the enabled checkers into a live engine: installs the
/// engine_probes before the run (construct it before engine.setup() /
/// engine.run()), samples while the window plays, and evaluates every
/// enabled checker in evaluate().
class invariant_monitor {
public:
    /// `watch` = assert the scrape-checkable invariants at EVERY scrape
    /// barrier instead of spot-checking: conservation runs each scrape
    /// (not every Nth), and no_silent_drops / bounded_flapping — pure
    /// functions over the event-log prefix, valid at any barrier — run
    /// live too.  Pass-scoped checkers (admission accounting over the
    /// closed window, imbalance monotonicity, recovery tail) still
    /// evaluate once at end-of-run, where their inputs are complete.
    invariant_monitor(sim_engine& engine, invariant_config config,
                      bool watch = false);

    /// Evaluate every enabled checker; call after the run.
    std::vector<invariant_result> evaluate() const;

    std::span<const imbalance_sample> imbalance_samples() const {
        return imbalance_samples_;
    }

private:
    void on_scrape(sim_time t);

    sim_engine* engine_;
    invariant_config config_;
    bool watch_ = false;
    std::vector<imbalance_sample> imbalance_samples_;
    /// Conservation is spot-checked live every Nth scrape (every scrape
    /// under watch); the first in-run violation wins over the end-of-run
    /// state (it would otherwise be masked by a later self-correction).
    static constexpr std::uint64_t live_check_every = 8;
    std::uint64_t scrapes_seen_ = 0;
    std::uint64_t live_checks_ = 0;
    std::string live_violation_name_;
    std::string live_violation_;
};

}  // namespace sci::harness
