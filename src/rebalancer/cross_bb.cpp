#include "rebalancer/cross_bb.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "simcore/error.hpp"

namespace sci {

cross_bb_rebalancer::cross_bb_rebalancer(const fleet& f,
                                         const flavor_catalog& catalog,
                                         cross_bb_config config)
    : fleet_(f), catalog_(catalog), config_(config) {
    expects(config_.target_ram_spread >= 0.0,
            "cross_bb_rebalancer: negative target spread");
    expects(config_.max_moves_per_pass >= 0,
            "cross_bb_rebalancer: negative move budget");
}

std::vector<cross_bb_move> cross_bb_rebalancer::plan(
    const placement_service& placement, const cross_bb_inputs& inputs) const {
    expects(inputs.vms_of_bb && inputs.flavor_of && inputs.resident_mib &&
                inputs.dirty_rate,
            "cross_bb_rebalancer::plan: all oracles required");

    // group providers by (dc, purpose); the scheduling domain is one DC
    std::map<std::pair<std::int32_t, bb_purpose>, std::vector<bb_id>> groups;
    for (bb_id bb : placement.providers()) {
        const building_block& block = fleet_.get(bb);
        groups[{block.dc.value(), block.purpose}].push_back(bb);
    }

    std::vector<cross_bb_move> moves;
    // working copy of reserved memory so planned moves are reflected
    std::map<bb_id, double> ram_ratio;
    std::map<bb_id, mebibytes> ram_used;
    for (bb_id bb : placement.providers()) {
        ram_used[bb] = placement.usage(bb).ram_used_mib;
    }
    const auto ratio_of = [&](bb_id bb) {
        return static_cast<double>(ram_used[bb]) /
               static_cast<double>(placement.inventory(bb).total_ram_mib);
    };
    // VMs already planned to move must not be picked twice
    std::map<bb_id, std::vector<vm_id>> pending_arrivals;
    std::vector<vm_id> already_moved;

    for (const auto& [key, bbs] : groups) {
        if (bbs.size() < 2) continue;

        for (int pass = 0;
             pass < config_.max_moves_per_pass &&
             static_cast<int>(moves.size()) < config_.max_moves_per_pass;
             ++pass) {
            bb_id donor = bbs.front();
            bb_id receiver = bbs.front();
            for (bb_id bb : bbs) {
                if (ratio_of(bb) > ratio_of(donor)) donor = bb;
                if (ratio_of(bb) < ratio_of(receiver)) receiver = bb;
            }
            const double spread = ratio_of(donor) - ratio_of(receiver);
            if (spread <= config_.target_ram_spread) break;

            // ideal transfer: half the absolute memory gap
            const double gap_mib =
                ratio_of(donor) *
                    static_cast<double>(placement.inventory(donor).total_ram_mib) -
                ratio_of(receiver) *
                    static_cast<double>(
                        placement.inventory(receiver).total_ram_mib);
            const double ideal = gap_mib / 2.0;

            vm_id best;
            double best_delta = std::numeric_limits<double>::infinity();
            migration_estimate best_estimate;
            for (vm_id vm : inputs.vms_of_bb(donor)) {
                if (std::find(already_moved.begin(), already_moved.end(), vm) !=
                    already_moved.end()) {
                    continue;
                }
                const flavor& f = inputs.flavor_of(vm);
                if (f.ram_mib > config_.heavy_vm_ram_mib) continue;
                if (static_cast<double>(f.ram_mib) > gap_mib) continue;
                // receiver admission under its allocation ratios
                const provider_inventory& inv = placement.inventory(receiver);
                const provider_usage& use = placement.usage(receiver);
                const mebibytes receiver_ram =
                    ram_used[receiver] + f.ram_mib;
                if (static_cast<double>(receiver_ram) >
                    static_cast<double>(inv.total_ram_mib) *
                        inv.ram_allocation_ratio) {
                    continue;
                }
                if (static_cast<double>(use.vcpus_used + f.vcpus) >
                    static_cast<double>(inv.total_pcpus) *
                        inv.cpu_allocation_ratio) {
                    continue;
                }
                // migration feasibility (Section 3.2)
                const migration_estimate est = estimate_live_migration(
                    inputs.resident_mib(vm), inputs.dirty_rate(vm), config_.cost);
                if (!est.converges || est.downtime_ms > config_.max_downtime_ms) {
                    continue;
                }
                const double delta =
                    std::abs(static_cast<double>(f.ram_mib) - ideal);
                if (delta < best_delta) {
                    best_delta = delta;
                    best = vm;
                    best_estimate = est;
                }
            }
            if (!best.valid()) break;

            const flavor& f = inputs.flavor_of(best);
            ram_used[donor] -= f.ram_mib;
            ram_used[receiver] += f.ram_mib;
            already_moved.push_back(best);
            moves.push_back(cross_bb_move{best, donor, receiver, best_estimate});
        }
    }
    return moves;
}

}  // namespace sci
