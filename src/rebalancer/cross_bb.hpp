#pragma once

// Cross-building-block rebalancer.
//
// Section 3.1: "fragmentation and imbalances can also occur across
// building blocks, requiring manual intervention or external rebalancers
// to resolve them", and Section 7: "Continuous migration mechanisms
// across BBs are required to maintain balanced resource distribution."
//
// This is that external rebalancer: it groups building blocks by
// (data center, purpose) — cross-DC migrations are out of scope per
// Section 3.1 — and plans VM moves from the most to the least
// reservation-loaded BB until the spread falls under the target.  Every
// candidate move is vetted against the live-migration cost model: heavy
// VMs and non-converging migrations are never planned (Section 3.2).

#include <functional>
#include <vector>

#include "drs/migration.hpp"
#include "infra/fleet.hpp"
#include "infra/flavor.hpp"
#include "sched/placement.hpp"

namespace sci {

struct cross_bb_config {
    /// Target max-min spread of reserved-RAM ratio within a (DC, purpose)
    /// group of building blocks.
    double target_ram_spread = 0.20;
    /// Move budget per pass.
    int max_moves_per_pass = 8;
    /// Never move VMs reserving more memory than this (Section 3.2).
    mebibytes heavy_vm_ram_mib = gib_to_mib(1024);
    /// Veto moves whose estimated downtime exceeds this.
    double max_downtime_ms = 2000.0;
    migration_cost_config cost;
};

struct cross_bb_move {
    vm_id vm;
    bb_id from;
    bb_id to;
    migration_estimate estimate;
};

/// Oracles supplied by the engine (which owns VM state and behaviors).
struct cross_bb_inputs {
    /// VMs currently placed on a building block.
    std::function<std::vector<vm_id>(bb_id)> vms_of_bb;
    /// Flavor of a VM.
    std::function<const flavor&(vm_id)> flavor_of;
    /// Resident (consumed) memory of a VM right now.
    std::function<mebibytes(vm_id)> resident_mib;
    /// Dirty-page rate of a VM right now (MiB/s).
    std::function<double(vm_id)> dirty_rate;
};

class cross_bb_rebalancer {
public:
    cross_bb_rebalancer(const fleet& f, const flavor_catalog& catalog,
                        cross_bb_config config);

    /// Plan one balancing pass.  Does not mutate the placement; the caller
    /// applies the returned moves (placement.move + cluster updates).  The
    /// engine speculates the moves' destination nodes as a batch keyed on
    /// each target cluster's usage version (sim_engine::cross_bb_pass), so
    /// the plan must stay pure — any mutation here would invalidate the
    /// whole batch on every pass.
    std::vector<cross_bb_move> plan(const placement_service& placement,
                                    const cross_bb_inputs& inputs) const;

    const cross_bb_config& config() const { return config_; }

private:
    const fleet& fleet_;
    const flavor_catalog& catalog_;
    cross_bb_config config_;
};

}  // namespace sci
