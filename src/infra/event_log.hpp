#pragma once

// Scheduling-relevant event log.
//
// The published dataset "includes ... scheduling-relevant events (if
// occurring within the observation period), such as creation, migration,
// resize, and deletion" (Section 4).  The engine records every lifecycle
// transition here; the log is exportable alongside the telemetry CSVs and
// feeds the churn analysis.

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "infra/ids.hpp"
#include "simcore/time.hpp"

namespace sci {

enum class lifecycle_event_kind {
    create,         ///< VM requested and placed
    schedule_fail,  ///< NoValidHost
    migrate,        ///< DRS balancing migration (node -> node)
    evacuate,       ///< forced migration off a decommissioned node
    resize,         ///< flavor change (grow or shrink)
    remove,         ///< VM deleted
    crash,          ///< VM killed by a hypervisor failure (sci::fault)
    ha_restart,     ///< HA re-placed a crash victim
    shed,           ///< backpressure rejected the request (reason says why)
};

std::string_view to_string(lifecycle_event_kind k);

/// Why a schedule_fail or shed happened (`none` for every other kind).
/// Exported with the event rows, so admission accounting — every rejected
/// request names its rejecting stage — is auditable from the dataset alone.
enum class schedule_fail_reason {
    none,                     ///< not a schedule_fail/shed event
    no_valid_host,            ///< scheduler exhausted candidates/retries
    no_accepting_node,        ///< BB admitted, but no node was accepting
    holistic_no_candidate,    ///< holistic scan found no admissible node
    holistic_claim_rejected,  ///< node accepted, provider claim was full
    deadline_expired,         ///< shed: request outlived its queue deadline
    queue_full,               ///< shed: backpressure queue was full
    shed_lower_priority,      ///< shed: evicted for a higher-priority request
    ha_attempts_exhausted,    ///< shed: HA gave up after max_restart_attempts
};

/// CSV token of a reason ("" for none, so non-failure rows stay clean).
std::string_view to_string(schedule_fail_reason r);

/// Inverse of to_string; nullopt for an unknown token.
std::optional<schedule_fail_reason> schedule_fail_reason_from(
    std::string_view token);

struct lifecycle_event {
    sim_time t = 0;
    lifecycle_event_kind kind = lifecycle_event_kind::create;
    vm_id vm;
    bb_id bb;        ///< building block involved (if any)
    node_id from;    ///< source node for migrations
    node_id to;      ///< destination node (placement/migrations)
    /// Rejecting stage for schedule_fail events; none otherwise.
    schedule_fail_reason reason = schedule_fail_reason::none;
};

/// Append-only, time-ordered event log.
class event_log {
public:
    /// Record an event.  Events must be appended in non-decreasing time
    /// order (the simulation is causal).
    void record(lifecycle_event event);

    std::span<const lifecycle_event> all() const { return events_; }
    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    /// Number of events of one kind.
    std::size_t count(lifecycle_event_kind kind) const;

    /// Events within [from, to).
    std::span<const lifecycle_event> between(sim_time from, sim_time to) const;

    /// All events of one VM (in time order).
    std::vector<lifecycle_event> of_vm(vm_id vm) const;

    /// Per-day counts of one kind over the observation window (the churn
    /// series; index = day).
    std::vector<int> daily_counts(lifecycle_event_kind kind,
                                  int days = observation_days) const;

private:
    std::vector<lifecycle_event> events_;
};

}  // namespace sci
