#pragma once

// The infrastructure hierarchy of Figure 1: region → availability zone →
// data center → building block (vSphere cluster) → compute node (ESXi).
//
// A fleet owns the whole hierarchy.  Entities are stored in flat vectors
// indexed by their strong ids; cross-links are id lists, so the structure
// is cheap to copy-free traverse in both directions.

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "infra/hardware.hpp"
#include "infra/ids.hpp"
#include "simcore/time.hpp"

namespace sci {

/// Purpose of a building block (Section 3.1): general-purpose BBs host the
/// mixed workload; dedicated BBs are reserved for special flavors (>= 3 TB
/// memory, GPU) where a max-placeable-VMs objective applies.
enum class bb_purpose {
    general,       ///< mixed general-purpose workload, load-balanced
    hana,          ///< memory bin-packed SAP HANA workload
    dedicated_xl,  ///< >= 3 TB flavors only
    gpu,           ///< GPU flavors only
    reserve,       ///< failover/scalability reserve: monitored, not scheduled
                   ///< (Section 5.1: "capacities are intentionally reserved
                   ///< in case of emergency failover, redundancy, and
                   ///< scalability demands")
};

std::string_view to_string(bb_purpose p);

struct region {
    region_id id;
    std::string name;
    std::vector<az_id> azs;
};

struct availability_zone {
    az_id id;
    region_id region;
    std::string name;
    std::vector<dc_id> dcs;
};

struct datacenter {
    dc_id id;
    az_id az;
    std::string name;
    std::vector<bb_id> bbs;
};

struct building_block {
    bb_id id;
    dc_id dc;
    std::string name;
    bb_purpose purpose = bb_purpose::general;
    hardware_profile profile;  ///< homogeneous across the BB's nodes
    std::vector<node_id> nodes;
};

/// One ESXi hypervisor.  Hardware comes from the owning building block's
/// profile.  available_from/until model hosts added or removed during the
/// observation window (the white heatmap cells of Section 5).
struct compute_node {
    node_id id;
    bb_id bb;
    std::string name;  ///< anonymised, e.g. "node-1a2b3c4d"
    sim_time available_from = std::numeric_limits<sim_time>::min();
    sim_time available_until = std::numeric_limits<sim_time>::max();

    bool available_at(sim_time t) const {
        return t >= available_from && t < available_until;
    }
};

/// Owning container for the full hierarchy, with builder and lookups.
class fleet {
public:
    region_id add_region(std::string name);
    az_id add_az(region_id region, std::string name);
    dc_id add_dc(az_id az, std::string name);
    bb_id add_bb(dc_id dc, std::string name, bb_purpose purpose,
                 hardware_profile profile, int node_count);
    /// Add one node to an existing building block.
    node_id add_node(bb_id bb);

    const region& get(region_id id) const;
    const availability_zone& get(az_id id) const;
    const datacenter& get(dc_id id) const;
    const building_block& get(bb_id id) const;
    const compute_node& get(node_id id) const;
    compute_node& get_mutable(node_id id);

    std::span<const region> regions() const { return regions_; }
    std::span<const availability_zone> azs() const { return azs_; }
    std::span<const datacenter> dcs() const { return dcs_; }
    std::span<const building_block> bbs() const { return bbs_; }
    std::span<const compute_node> nodes() const { return nodes_; }

    std::size_t region_count() const { return regions_.size(); }
    std::size_t az_count() const { return azs_.size(); }
    std::size_t dc_count() const { return dcs_.size(); }
    std::size_t bb_count() const { return bbs_.size(); }
    std::size_t node_count() const { return nodes_.size(); }

    /// Hardware profile of a node (resolved via its building block).
    const hardware_profile& node_profile(node_id id) const;

    /// Data center that contains the given building block / node.
    dc_id dc_of(bb_id id) const { return get(id).dc; }
    dc_id dc_of(node_id id) const { return get(get(id).bb).dc; }

    /// All node ids within a data center (across its building blocks).
    std::vector<node_id> nodes_of_dc(dc_id id) const;

    /// All building block ids within an availability zone.
    std::vector<bb_id> bbs_of_az(az_id id) const;

    /// Total physical core / memory capacity of a building block.
    core_count bb_total_cores(bb_id id) const;
    mebibytes bb_total_memory(bb_id id) const;

private:
    std::vector<region> regions_;
    std::vector<availability_zone> azs_;
    std::vector<datacenter> dcs_;
    std::vector<building_block> bbs_;
    std::vector<compute_node> nodes_;
};

/// Anonymised host name in the style of the published dataset (hashed
/// hostnames, Appendix A): deterministic hex digest of a seed + index.
std::string anonymised_name(std::string_view kind, std::uint64_t index);

}  // namespace sci
