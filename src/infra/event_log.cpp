#include "infra/event_log.hpp"

#include <algorithm>

#include "simcore/error.hpp"

namespace sci {

std::string_view to_string(lifecycle_event_kind k) {
    switch (k) {
        case lifecycle_event_kind::create: return "create";
        case lifecycle_event_kind::schedule_fail: return "schedule_fail";
        case lifecycle_event_kind::migrate: return "migrate";
        case lifecycle_event_kind::evacuate: return "evacuate";
        case lifecycle_event_kind::resize: return "resize";
        case lifecycle_event_kind::remove: return "delete";
        case lifecycle_event_kind::crash: return "crash";
        case lifecycle_event_kind::ha_restart: return "ha_restart";
        case lifecycle_event_kind::shed: return "shed";
    }
    return "unknown";
}

std::string_view to_string(schedule_fail_reason r) {
    switch (r) {
        case schedule_fail_reason::none: return "";
        case schedule_fail_reason::no_valid_host: return "no_valid_host";
        case schedule_fail_reason::no_accepting_node:
            return "no_accepting_node";
        case schedule_fail_reason::holistic_no_candidate:
            return "holistic_no_candidate";
        case schedule_fail_reason::holistic_claim_rejected:
            return "holistic_claim_rejected";
        case schedule_fail_reason::deadline_expired: return "deadline_expired";
        case schedule_fail_reason::queue_full: return "queue_full";
        case schedule_fail_reason::shed_lower_priority:
            return "shed_lower_priority";
        case schedule_fail_reason::ha_attempts_exhausted:
            return "ha_attempts_exhausted";
    }
    return "unknown";
}

std::optional<schedule_fail_reason> schedule_fail_reason_from(
    std::string_view token) {
    for (auto r : {schedule_fail_reason::none,
                   schedule_fail_reason::no_valid_host,
                   schedule_fail_reason::no_accepting_node,
                   schedule_fail_reason::holistic_no_candidate,
                   schedule_fail_reason::holistic_claim_rejected,
                   schedule_fail_reason::deadline_expired,
                   schedule_fail_reason::queue_full,
                   schedule_fail_reason::shed_lower_priority,
                   schedule_fail_reason::ha_attempts_exhausted}) {
        if (token == to_string(r)) return r;
    }
    return std::nullopt;
}

void event_log::record(lifecycle_event event) {
    expects(events_.empty() || event.t >= events_.back().t,
            "event_log::record: events must arrive in time order");
    events_.push_back(event);
}

std::size_t event_log::count(lifecycle_event_kind kind) const {
    return static_cast<std::size_t>(
        std::count_if(events_.begin(), events_.end(),
                      [kind](const lifecycle_event& e) { return e.kind == kind; }));
}

std::span<const lifecycle_event> event_log::between(sim_time from,
                                                    sim_time to) const {
    const auto lower = std::lower_bound(
        events_.begin(), events_.end(), from,
        [](const lifecycle_event& e, sim_time t) { return e.t < t; });
    const auto upper = std::lower_bound(
        lower, events_.end(), to,
        [](const lifecycle_event& e, sim_time t) { return e.t < t; });
    return {std::to_address(lower), static_cast<std::size_t>(upper - lower)};
}

std::vector<lifecycle_event> event_log::of_vm(vm_id vm) const {
    std::vector<lifecycle_event> out;
    for (const lifecycle_event& e : events_) {
        if (e.vm == vm) out.push_back(e);
    }
    return out;
}

std::vector<int> event_log::daily_counts(lifecycle_event_kind kind,
                                         int days) const {
    expects(days > 0, "event_log::daily_counts: days must be positive");
    std::vector<int> out(static_cast<std::size_t>(days), 0);
    for (const lifecycle_event& e : events_) {
        if (e.kind != kind) continue;
        const std::int64_t day = day_index(e.t);
        if (day >= 0 && day < days) ++out[static_cast<std::size_t>(day)];
    }
    return out;
}

}  // namespace sci
