#include "infra/fleet.hpp"

#include <array>
#include <cstdio>

#include "simcore/error.hpp"
#include "simcore/rng.hpp"

namespace sci {

namespace {

template <class T>
const T& at(const std::vector<T>& v, std::int32_t idx, std::string_view what) {
    expects(idx >= 0 && static_cast<std::size_t>(idx) < v.size(),
            std::string("fleet: unknown ") + std::string(what));
    return v[static_cast<std::size_t>(idx)];
}

}  // namespace

std::string_view to_string(bb_purpose p) {
    switch (p) {
        case bb_purpose::general: return "general";
        case bb_purpose::hana: return "hana";
        case bb_purpose::dedicated_xl: return "dedicated_xl";
        case bb_purpose::gpu: return "gpu";
        case bb_purpose::reserve: return "reserve";
    }
    return "unknown";
}

region_id fleet::add_region(std::string name) {
    const region_id id(static_cast<std::int32_t>(regions_.size()));
    regions_.push_back(region{.id = id, .name = std::move(name), .azs = {}});
    return id;
}

az_id fleet::add_az(region_id region, std::string name) {
    expects(region.valid() &&
                static_cast<std::size_t>(region.value()) < regions_.size(),
            "fleet::add_az: unknown region");
    const az_id id(static_cast<std::int32_t>(azs_.size()));
    azs_.push_back(availability_zone{
        .id = id, .region = region, .name = std::move(name), .dcs = {}});
    regions_[static_cast<std::size_t>(region.value())].azs.push_back(id);
    return id;
}

dc_id fleet::add_dc(az_id az, std::string name) {
    expects(az.valid() && static_cast<std::size_t>(az.value()) < azs_.size(),
            "fleet::add_dc: unknown az");
    const dc_id id(static_cast<std::int32_t>(dcs_.size()));
    dcs_.push_back(datacenter{.id = id, .az = az, .name = std::move(name), .bbs = {}});
    azs_[static_cast<std::size_t>(az.value())].dcs.push_back(id);
    return id;
}

bb_id fleet::add_bb(dc_id dc, std::string name, bb_purpose purpose,
                    hardware_profile profile, int node_count) {
    expects(dc.valid() && static_cast<std::size_t>(dc.value()) < dcs_.size(),
            "fleet::add_bb: unknown dc");
    expects(node_count >= 0, "fleet::add_bb: negative node count");
    expects(profile.pcpu_cores > 0 && profile.memory_mib > 0,
            "fleet::add_bb: profile must have positive capacity");
    const bb_id id(static_cast<std::int32_t>(bbs_.size()));
    bbs_.push_back(building_block{.id = id,
                                  .dc = dc,
                                  .name = std::move(name),
                                  .purpose = purpose,
                                  .profile = std::move(profile),
                                  .nodes = {}});
    dcs_[static_cast<std::size_t>(dc.value())].bbs.push_back(id);
    for (int i = 0; i < node_count; ++i) {
        add_node(id);
    }
    return id;
}

node_id fleet::add_node(bb_id bb) {
    expects(bb.valid() && static_cast<std::size_t>(bb.value()) < bbs_.size(),
            "fleet::add_node: unknown building block");
    const node_id id(static_cast<std::int32_t>(nodes_.size()));
    nodes_.push_back(compute_node{
        .id = id,
        .bb = bb,
        .name = anonymised_name("node", static_cast<std::uint64_t>(id.value()))});
    bbs_[static_cast<std::size_t>(bb.value())].nodes.push_back(id);
    return id;
}

const region& fleet::get(region_id id) const { return at(regions_, id.value(), "region"); }
const availability_zone& fleet::get(az_id id) const { return at(azs_, id.value(), "az"); }
const datacenter& fleet::get(dc_id id) const { return at(dcs_, id.value(), "dc"); }
const building_block& fleet::get(bb_id id) const { return at(bbs_, id.value(), "building block"); }
const compute_node& fleet::get(node_id id) const { return at(nodes_, id.value(), "node"); }

compute_node& fleet::get_mutable(node_id id) {
    return const_cast<compute_node&>(get(id));
}

const hardware_profile& fleet::node_profile(node_id id) const {
    return get(get(id).bb).profile;
}

std::vector<node_id> fleet::nodes_of_dc(dc_id id) const {
    std::vector<node_id> out;
    for (bb_id bb : get(id).bbs) {
        const auto& nodes = get(bb).nodes;
        out.insert(out.end(), nodes.begin(), nodes.end());
    }
    return out;
}

std::vector<bb_id> fleet::bbs_of_az(az_id id) const {
    std::vector<bb_id> out;
    for (dc_id dc : get(id).dcs) {
        const auto& bbs = get(dc).bbs;
        out.insert(out.end(), bbs.begin(), bbs.end());
    }
    return out;
}

core_count fleet::bb_total_cores(bb_id id) const {
    const building_block& bb = get(id);
    return static_cast<core_count>(bb.nodes.size()) * bb.profile.pcpu_cores;
}

mebibytes fleet::bb_total_memory(bb_id id) const {
    const building_block& bb = get(id);
    return static_cast<mebibytes>(bb.nodes.size()) * bb.profile.memory_mib;
}

std::string anonymised_name(std::string_view kind, std::uint64_t index) {
    const std::uint64_t digest = splitmix64(fnv1a(kind) ^ splitmix64(index));
    std::array<char, 64> buf{};
    std::snprintf(buf.data(), buf.size(), "%.*s-%08x",
                  static_cast<int>(kind.size()), kind.data(),
                  static_cast<std::uint32_t>(digest & 0xffffffffu));
    return std::string(buf.data());
}

}  // namespace sci
