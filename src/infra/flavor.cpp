#include "infra/flavor.hpp"

#include <algorithm>

#include "simcore/error.hpp"

namespace sci {

std::string_view to_string(workload_class wc) {
    switch (wc) {
        case workload_class::general_purpose: return "general_purpose";
        case workload_class::s4hana_app: return "s4hana_app";
        case workload_class::hana_db: return "hana_db";
    }
    return "unknown";
}

std::string_view to_string(vcpu_class c) {
    switch (c) {
        case vcpu_class::small: return "Small";
        case vcpu_class::medium: return "Medium";
        case vcpu_class::large: return "Large";
        case vcpu_class::extra_large: return "Extra Large";
    }
    return "unknown";
}

std::string_view to_string(ram_class c) {
    switch (c) {
        case ram_class::small: return "Small";
        case ram_class::medium: return "Medium";
        case ram_class::large: return "Large";
        case ram_class::extra_large: return "Extra Large";
    }
    return "unknown";
}

vcpu_class classify_vcpu(core_count vcpus) {
    if (vcpus <= 4) return vcpu_class::small;
    if (vcpus <= 16) return vcpu_class::medium;
    if (vcpus <= 64) return vcpu_class::large;
    return vcpu_class::extra_large;
}

ram_class classify_ram(mebibytes ram_mib) {
    if (ram_mib <= gib_to_mib(2)) return ram_class::small;
    if (ram_mib <= gib_to_mib(64)) return ram_class::medium;
    if (ram_mib <= gib_to_mib(128)) return ram_class::large;
    return ram_class::extra_large;
}

flavor_id flavor_catalog::add(std::string name, core_count vcpus,
                              mebibytes ram_mib, gibibytes disk_gib,
                              workload_class wclass) {
    expects(!name.empty(), "flavor_catalog::add: empty name");
    expects(vcpus > 0, "flavor_catalog::add: vcpus must be positive");
    expects(ram_mib > 0, "flavor_catalog::add: ram must be positive");
    expects(disk_gib >= 0.0, "flavor_catalog::add: disk must be non-negative");
    expects(!find(name).has_value(), "flavor_catalog::add: duplicate name");
    const flavor_id id(static_cast<std::int32_t>(flavors_.size()));
    flavors_.push_back(flavor{.id = id,
                              .name = std::move(name),
                              .vcpus = vcpus,
                              .ram_mib = ram_mib,
                              .disk_gib = disk_gib,
                              .wclass = wclass});
    return id;
}

void flavor_catalog::set_cpu_pinned(flavor_id id, bool pinned) {
    expects(id.valid() && static_cast<std::size_t>(id.value()) < flavors_.size(),
            "flavor_catalog::set_cpu_pinned: unknown flavor id");
    flavors_[static_cast<std::size_t>(id.value())].cpu_pinned = pinned;
}

const flavor& flavor_catalog::get(flavor_id id) const {
    expects(id.valid() && static_cast<std::size_t>(id.value()) < flavors_.size(),
            "flavor_catalog::get: unknown flavor id");
    return flavors_[static_cast<std::size_t>(id.value())];
}

std::optional<flavor_id> flavor_catalog::find(std::string_view name) const {
    const auto it = std::find_if(flavors_.begin(), flavors_.end(),
                                 [&](const flavor& f) { return f.name == name; });
    if (it == flavors_.end()) return std::nullopt;
    return it->id;
}

}  // namespace sci
