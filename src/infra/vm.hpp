#pragma once

// Virtual machine records and their lifecycle.
//
// A VM is requested against a flavor, placed by the Nova scheduler onto a
// building block, assigned to a concrete node by DRS (initial node choice +
// later migrations), and eventually deleted.  The registry keeps the whole
// population including deleted VMs, because lifetime analysis (Figure 15)
// needs terminated instances too.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "infra/flavor.hpp"
#include "infra/ids.hpp"
#include "simcore/error.hpp"
#include "simcore/time.hpp"

namespace sci {

enum class vm_state {
    pending,   ///< requested, not yet placed
    active,    ///< placed and running
    deleted,   ///< terminated
    error,     ///< placement failed (no valid host)
};

std::string_view to_string(vm_state s);

struct vm_record {
    vm_id id;
    std::string name;  ///< anonymised instance name
    flavor_id flavor;
    project_id project;
    vm_state state = vm_state::pending;
    sim_time created_at = 0;
    /// Set when the VM is deleted; unset for instances alive at window end.
    std::optional<sim_time> deleted_at;
    /// Building block chosen by the Nova scheduler (invalid until placed).
    bb_id placed_bb;
    /// Node chosen by DRS within the building block (invalid until placed).
    node_id placed_node;
    /// Number of DRS / rebalancer migrations this VM underwent.
    int migration_count = 0;

    bool alive_at(sim_time t) const {
        return state != vm_state::error && t >= created_at &&
               (!deleted_at.has_value() || t < *deleted_at);
    }

    /// Lifetime as of `now` (deleted VMs use their deletion instant).
    sim_duration lifetime(sim_time now) const {
        const sim_time end = deleted_at.value_or(now);
        return end > created_at ? end - created_at : 0;
    }
};

/// Owning collection of every VM ever requested in a simulation run.
class vm_registry {
public:
    /// Create a pending VM record; the scheduler fills in placement.
    vm_id create(flavor_id flavor, project_id project, sim_time created_at);

    const vm_record& get(vm_id id) const;
    vm_record& get_mutable(vm_id id);

    std::span<const vm_record> all() const { return vms_; }
    std::size_t size() const { return vms_.size(); }

    /// Count of VMs in a given state.
    std::size_t count_in_state(vm_state s) const;

    /// Ids of VMs alive at time t.
    std::vector<vm_id> alive_at(sim_time t) const;

private:
    std::vector<vm_record> vms_;
};

}  // namespace sci
