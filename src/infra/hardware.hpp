#pragma once

// Hardware profiles of compute nodes.  Within a building block all nodes
// share one profile (the paper: "hosts exhibit homogeneous hardware
// capabilities within a given building block"), but profiles differ across
// building blocks within an availability zone (Section 3.2).

#include <string>

#include "simcore/units.hpp"

namespace sci {

/// Physical capabilities of one ESXi compute node.
struct hardware_profile {
    std::string name;          ///< e.g. "gp-small", "hana-3tb"
    core_count pcpu_cores = 0; ///< physical cores
    mebibytes memory_mib = 0;  ///< installed RAM
    gibibytes storage_gib = 0; ///< local datastore capacity
    kbps nic_kbps = node_nic_capacity_kbps;  ///< NIC capacity (200 Gbps)
};

/// Standard profiles used by the scenario presets.  Modelled after common
/// enterprise virtualization nodes: dual-socket general purpose hosts and
/// large-memory hosts for in-memory databases (≥3 TB flavors get dedicated
/// building blocks per Section 3.1 "Support of high user demands").
namespace profiles {

inline hardware_profile general_purpose() {
    return {.name = "gp-96c-1024g",
            .pcpu_cores = 96,
            .memory_mib = gib_to_mib(1024),
            .storage_gib = 7'680.0};
}

inline hardware_profile general_purpose_large() {
    return {.name = "gp-128c-2048g",
            .pcpu_cores = 128,
            .memory_mib = gib_to_mib(2048),
            .storage_gib = 15'360.0};
}

inline hardware_profile hana_large_memory() {
    return {.name = "hana-224c-8tb",
            .pcpu_cores = 224,
            .memory_mib = gib_to_mib(8192),
            .storage_gib = 30'720.0};
}

inline hardware_profile hana_extra_large_memory() {
    return {.name = "hana-448c-16tb",
            .pcpu_cores = 448,
            .memory_mib = gib_to_mib(16384),
            .storage_gib = 61'440.0};
}

}  // namespace profiles

}  // namespace sci
