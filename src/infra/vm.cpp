#include "infra/vm.hpp"

#include <algorithm>

#include "infra/fleet.hpp"

namespace sci {

std::string_view to_string(vm_state s) {
    switch (s) {
        case vm_state::pending: return "pending";
        case vm_state::active: return "active";
        case vm_state::deleted: return "deleted";
        case vm_state::error: return "error";
    }
    return "unknown";
}

vm_id vm_registry::create(flavor_id flavor, project_id project,
                          sim_time created_at) {
    expects(flavor.valid(), "vm_registry::create: invalid flavor");
    const vm_id id(static_cast<std::int32_t>(vms_.size()));
    vms_.push_back(vm_record{
        .id = id,
        .name = anonymised_name("vm", static_cast<std::uint64_t>(id.value())),
        .flavor = flavor,
        .project = project,
        .created_at = created_at});
    return id;
}

const vm_record& vm_registry::get(vm_id id) const {
    expects(id.valid() && static_cast<std::size_t>(id.value()) < vms_.size(),
            "vm_registry::get: unknown vm id");
    return vms_[static_cast<std::size_t>(id.value())];
}

vm_record& vm_registry::get_mutable(vm_id id) {
    return const_cast<vm_record&>(get(id));
}

std::size_t vm_registry::count_in_state(vm_state s) const {
    return static_cast<std::size_t>(
        std::count_if(vms_.begin(), vms_.end(),
                      [s](const vm_record& vm) { return vm.state == s; }));
}

std::vector<vm_id> vm_registry::alive_at(sim_time t) const {
    std::vector<vm_id> out;
    for (const vm_record& vm : vms_) {
        if (vm.state != vm_state::pending && vm.alive_at(t)) out.push_back(vm.id);
    }
    return out;
}

}  // namespace sci
