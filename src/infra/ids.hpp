#pragma once

// Strong identifier types for the infrastructure hierarchy.  A strong_id is
// an index into the owning container (fleet / vm_registry), wrapped so that
// e.g. a node_id cannot be passed where a vm_id is expected.

#include <compare>
#include <cstdint>
#include <functional>

namespace sci {

template <class Tag>
class strong_id {
public:
    constexpr strong_id() = default;
    constexpr explicit strong_id(std::int32_t value) : value_(value) {}

    constexpr std::int32_t value() const { return value_; }
    constexpr bool valid() const { return value_ >= 0; }

    friend constexpr auto operator<=>(strong_id, strong_id) = default;

private:
    std::int32_t value_ = -1;
};

struct region_tag {};
struct az_tag {};
struct dc_tag {};
struct bb_tag {};
struct node_tag {};
struct vm_tag {};
struct flavor_tag {};
struct project_tag {};
struct group_tag {};

using region_id = strong_id<region_tag>;
using az_id = strong_id<az_tag>;
using dc_id = strong_id<dc_tag>;
using bb_id = strong_id<bb_tag>;      ///< building block == vSphere cluster
using node_id = strong_id<node_tag>;  ///< ESXi hypervisor (compute node)
using vm_id = strong_id<vm_tag>;
using flavor_id = strong_id<flavor_tag>;
using project_id = strong_id<project_tag>;  ///< tenant
using group_id = strong_id<group_tag>;      ///< server group (affinity)

}  // namespace sci

template <class Tag>
struct std::hash<sci::strong_id<Tag>> {
    std::size_t operator()(sci::strong_id<Tag> id) const noexcept {
        return std::hash<std::int32_t>{}(id.value());
    }
};
