#pragma once

// Flavors: predefined vCPU/memory/storage templates for VMs (Section 2.1).
// The catalog also carries the paper's size taxonomy (Tables 1 and 2) and
// workload classes used for policy decisions (general purpose is
// load-balanced, SAP S/4HANA is memory bin-packed; Section 3.2).

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "infra/ids.hpp"
#include "simcore/units.hpp"

namespace sci {

/// Broad workload class of the application running inside a flavor's VMs.
enum class workload_class {
    general_purpose,  ///< dev envs, CI/CD, Kubernetes infra, ...
    s4hana_app,       ///< SAP ABAP application servers
    hana_db,          ///< SAP HANA in-memory databases (memory intensive)
};

std::string_view to_string(workload_class wc);

/// The paper's VM size categories by vCPU count (Table 1).
enum class vcpu_class { small, medium, large, extra_large };

/// The paper's VM size categories by RAM (Table 2).
enum class ram_class { small, medium, large, extra_large };

std::string_view to_string(vcpu_class c);
std::string_view to_string(ram_class c);

/// Classify per Table 1: small <= 4, medium <= 16, large <= 64, XL > 64.
vcpu_class classify_vcpu(core_count vcpus);

/// Classify per Table 2: small <= 2 GiB, medium <= 64, large <= 128, XL > 128.
ram_class classify_ram(mebibytes ram_mib);

/// A VM template: the resources Nova reserves when placing an instance.
struct flavor {
    flavor_id id;
    std::string name;  ///< e.g. "g_c4_m32"
    core_count vcpus = 0;
    mebibytes ram_mib = 0;
    gibibytes disk_gib = 0;
    workload_class wclass = workload_class::general_purpose;
    /// QoS: CPU pinning reserves dedicated physical cores on the host,
    /// exempting the VM from contention (the paper's §8 future work:
    /// "CPU-pinning ... ensures reduced latency to performance-sensitive
    /// VMs by reserving dedicated CPU cores on hosts").
    bool cpu_pinned = false;
    /// Flavors with >= 3 TB memory require dedicated building blocks
    /// (Section 3.1) and are placed with a max-placeable-VMs objective.
    bool requires_dedicated_bb() const { return ram_mib >= gib_to_mib(3072); }

    vcpu_class cpu_class() const { return classify_vcpu(vcpus); }
    ram_class memory_class() const { return classify_ram(ram_mib); }
};

/// Immutable, indexed collection of flavors.
class flavor_catalog {
public:
    /// Register a flavor; assigns and returns its id.  Names must be unique.
    flavor_id add(std::string name, core_count vcpus, mebibytes ram_mib,
                  gibibytes disk_gib, workload_class wclass);

    /// Toggle the CPU-pinning QoS class of an existing flavor.
    void set_cpu_pinned(flavor_id id, bool pinned);

    const flavor& get(flavor_id id) const;
    std::optional<flavor_id> find(std::string_view name) const;
    std::span<const flavor> all() const { return flavors_; }
    std::size_t size() const { return flavors_.size(); }

private:
    std::vector<flavor> flavors_;
};

}  // namespace sci
